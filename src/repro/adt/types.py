"""Type registry: ``create type`` and ``create large type``.

A small ADT is defined by its input and output conversion routines (text
to value and back), exactly as in [STON86]:

    create type rect (input = rect_in, output = rect_out)

A **large** ADT (§4 of the paper) extends the syntax with a storage clause
naming one of the four large-object implementations:

    create large type image (
        input = ..., output = ..., storage = v-segment)

For large types the conversion routines are the *compression* hook (§3):
they are applied per chunk / per segment by the chosen implementation, so
random access into compressed objects stays cheap and only compressed data
crosses the client/server boundary ("just-in-time uncompression").
Conversion here is expressed as a named :class:`~repro.compress.base.Compressor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import CastError, UnknownType

#: Canonical names for the four §6 implementations.
LARGE_STORAGE_KINDS = ("ufile", "pfile", "fchunk", "vsegment")

_STORAGE_ALIASES = {
    "u-file": "ufile",
    "p-file": "pfile",
    "f-chunk": "fchunk",
    "v-segment": "vsegment",
}


def normalize_storage(kind: str) -> str:
    """Accept both ``fchunk`` and the paper's ``f-chunk`` spellings."""
    kind = _STORAGE_ALIASES.get(kind, kind)
    if kind not in LARGE_STORAGE_KINDS:
        raise UnknownType(
            f"unknown large-object storage {kind!r} "
            f"(have: {', '.join(LARGE_STORAGE_KINDS)})")
    return kind


@dataclass
class TypeDefinition:
    """One registered ADT."""

    name: str
    input_fn: Callable[[str], Any]
    output_fn: Callable[[Any], str]
    is_large: bool = False
    #: For large types: which of the four implementations stores values.
    storage: str = ""
    #: For large types: compressor name applied per chunk/segment.
    compression: str = "none"
    #: Scalar type used to store values of this ADT inside tuples.
    #: Large types store their object designator as text.
    storage_type: str = "text"

    def parse(self, text: str) -> Any:
        """Run the input conversion routine."""
        try:
            return self.input_fn(text)
        except Exception as exc:
            raise CastError(
                f"cannot convert {text!r} to type {self.name}: {exc}"
            ) from exc

    def render(self, value: Any) -> str:
        """Run the output conversion routine."""
        return self.output_fn(value)


def _rect_in(text: str) -> tuple[float, float, float, float]:
    parts = [float(p) for p in text.split(",")]
    if len(parts) != 4:
        raise ValueError("rect wants 'x1,y1,x2,y2'")
    return tuple(parts)


def _rect_out(value: tuple) -> str:
    return ",".join(f"{v:g}" for v in value)


class TypeRegistry:
    """All ADTs known to one database."""

    def __init__(self) -> None:
        self._types: dict[str, TypeDefinition] = {}
        self._register_builtins()

    def _register_builtins(self) -> None:
        self.register("int4", int, str, storage_type="int4")
        self.register("int8", int, str, storage_type="int8")
        self.register("oid", int, str, storage_type="oid")
        self.register("float8", float, repr, storage_type="float8")
        self.register("bool", lambda s: s.lower() in ("t", "true", "1"),
                      lambda v: "true" if v else "false",
                      storage_type="bool")
        self.register("text", str, str, storage_type="text")
        self.register("name", str, str, storage_type="name")
        self.register("bytea", lambda s: bytes.fromhex(s),
                      lambda v: bytes(v).hex(), storage_type="bytea")
        # The paper's running example: clip(EMP.picture, "0,0,20,20"::rect)
        self.register("rect", _rect_in, _rect_out)

    # -- registration --------------------------------------------------------------

    def register(self, name: str, input_fn: Callable[[str], Any],
                 output_fn: Callable[[Any], str],
                 storage_type: str = "text") -> TypeDefinition:
        """``create type`` — a small ADT."""
        definition = TypeDefinition(name=name, input_fn=input_fn,
                                    output_fn=output_fn,
                                    storage_type=storage_type)
        self._types[name] = definition
        return definition

    def register_large(self, name: str, storage: str = "fchunk",
                       compression: str = "none",
                       input_fn: Callable[[str], Any] | None = None,
                       output_fn: Callable[[Any], str] | None = None,
                       ) -> TypeDefinition:
        """``create large type`` — §4's extended syntax.

        The default conversion routines pass the large-object designator
        through unchanged; *compression* names the per-chunk compressor the
        storage implementation applies.
        """
        definition = TypeDefinition(
            name=name,
            input_fn=input_fn or str,
            output_fn=output_fn or str,
            is_large=True,
            storage=normalize_storage(storage),
            compression=compression,
            storage_type="text",
        )
        self._types[name] = definition
        return definition

    # -- lookup ----------------------------------------------------------------------

    def get(self, name: str) -> TypeDefinition:
        definition = self._types.get(name)
        if definition is None:
            raise UnknownType(f"no type named {name!r}")
        return definition

    def exists(self, name: str) -> bool:
        return name in self._types

    def is_large(self, name: str) -> bool:
        return name in self._types and self._types[name].is_large

    def names(self) -> list[str]:
        return sorted(self._types)

    def large_names(self) -> list[str]:
        return sorted(n for n, d in self._types.items() if d.is_large)
