"""The abstract-data-type system: types, functions, operators.

The paper's central argument (§3) is that large objects should be *large
ADTs*: typed values with registered input/output conversion routines and
user-defined functions and operators that the DBMS can run directly —
instead of opaque BLOBs that must be shipped to the client to be examined.
"""

from repro.adt.functions import FunctionDef, FunctionRegistry
from repro.adt.types import TypeDefinition, TypeRegistry
from repro.adt.values import Datum

__all__ = [
    "TypeDefinition",
    "TypeRegistry",
    "FunctionDef",
    "FunctionRegistry",
    "Datum",
]
