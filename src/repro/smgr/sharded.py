"""Sharded, replicated storage manager: blocks striped across N nodes.

ROADMAP item 3 ("scale-out storage").  The manager keeps the ordinary
block-oriented interface — relations and the buffer pool are oblivious —
while physically spreading every file over a set of
:class:`~repro.smgr.base.StorageNode` instances under a
:class:`~repro.smgr.base.PlacementPolicy`:

* **R-of-N quorum writes** — a block write goes to every replica of its
  band; it succeeds iff at least ``write_quorum`` replicas take it.
  Replicas that missed a successful write (a down or flaky node) are
  tracked as *stale*, reported as ``replica_lag`` in the stats.
* **read-one with read-repair** — reads prefer a fresh replica, fall back
  across replicas on per-node errors, and opportunistically rewrite any
  reachable stale replica with the fresh bytes just read.  A read never
  silently serves a stale copy: if no fresh replica is reachable the read
  fails loudly rather than lose committed bytes.
* **scrub** — :meth:`ShardedStorageManager.scrub` compares replicas
  byte-for-byte and repairs divergence from the copy with the highest
  page LSN, which is what heals a *reopened* database whose in-memory
  stale set died with the process.
* **node add/remove with incremental rebalancing** — topology changes pin
  every existing block to its current location, re-target placement, and
  let :meth:`ShardedStorageManager.rebalance` migrate blocks in bounded
  steps while reads and writes keep flowing.
* **node fault hooks** — ``on node <k> [after N]: down|slow|flaky|up``
  rules in the PR-2 fault DSL transition node health mid-workload; the
  quorum machinery absorbs what it can and surfaces the rest.

Throughput accounting: every node owns a
:class:`~repro.sim.devices.DevicePort`, so ``busy_s`` per node measures
each device's service time.  A topology's aggregate throughput is bytes
moved divided by the *busiest* node's ``busy_s`` (the critical path) —
the number N parallel clients actually wait on, and what the topology
benchmark charts against node count and replica factor.
"""

from __future__ import annotations

import os
import threading

from repro.errors import StorageManagerError
from repro.sim.clock import SimClock
from repro.sim.devices import DeviceModel, magnetic_disk_device
from repro.sim.faults import FaultPlan
from repro.smgr.base import (DiskBlockStore, HashPlacement,
                             MemoryBlockStore, NodeAddressedManager,
                             PlacementPolicy, RangePlacement, StorageNode)
from repro.storage.page import SlottedPage
from repro.txn.lockdep import LockdepMutex


class ShardedStorageManager(NodeAddressedManager):
    """R-of-N replicated striping over independent storage nodes."""

    name = "sharded"

    def __init__(self, clock: SimClock, nodes: list[StorageNode],
                 placement: PlacementPolicy,
                 write_quorum: int | None = None,
                 model: DeviceModel | None = None):
        if not nodes:
            raise StorageManagerError("a sharded manager needs >= 1 node")
        model = model or magnetic_disk_device()
        super().__init__(model, clock, nodes=list(nodes),
                         placement=placement)
        replication = placement.replication
        if write_quorum is None:
            write_quorum = replication // 2 + 1
        if not 1 <= write_quorum <= replication:
            raise StorageManagerError(
                f"write quorum {write_quorum} outside 1..{replication}")
        self.write_quorum = write_quorum
        #: Node indices participating in placement (a removed node leaves
        #: this list but stays in ``nodes`` until rebalancing drains it).
        self._active: list[int] = list(range(len(self.nodes)))
        #: Per-block replica-set overrides (node indices), present while a
        #: block sits somewhere other than where placement now says.
        self._locations: dict[tuple[str, int], tuple[int, ...]] = {}
        #: Blocks that must be re-evaluated against current placement.
        self._pending: set[tuple[str, int]] = set()
        #: Replicas that missed a quorum write: (fileid, blockno, node).
        self._stale: set[tuple[str, int, int]] = set()
        #: Manager-level file lengths (global blocks, dense by contract).
        self._lengths: dict[str, int] = {}
        self._lock = LockdepMutex("mutex:smgr", reentrant=True)
        self._node_plan: FaultPlan | None = None
        self.quorum_failures = 0
        self.repairs = 0
        self.rebalanced = 0

    # -- fault-plan wiring ---------------------------------------------------

    def set_node_plan(self, plan: FaultPlan | None) -> None:
        """Install a fault plan whose ``node`` rules drive node health."""
        with self._lock:
            self._node_plan = plan

    def clear_node_plan(self) -> None:
        """Drop the plan and return every node to healthy."""
        with self._lock:
            self._node_plan = None
            for node in self.nodes:
                node.set_state("up")

    def _consult_plan(self, node: StorageNode) -> None:
        """Apply any firing ``node`` rule to *node* before an access."""
        plan = self._node_plan
        if plan is None:
            return
        rule = plan.check_node(node.node_id)
        if rule is not None:
            if node.set_state(rule.action):
                plan.note(f"node {node.node_id}: {rule.action}")

    # -- placement resolution ------------------------------------------------

    def _placement_replicas(self, fileid: str,
                            blockno: int) -> tuple[int, ...]:
        positions = self.placement.replicas(fileid, blockno,
                                            len(self._active))
        return tuple(self._active[p] for p in positions)

    def _replica_nodes(self, fileid: str, blockno: int) -> tuple[int, ...]:
        override = self._locations.get((fileid, blockno))
        if override is not None:
            return override
        return self._placement_replicas(fileid, blockno)

    def node_replicas(self, fileid: str, blockno: int) -> tuple[int, ...]:
        with self._lock:
            return self._replica_nodes(fileid, blockno)

    def placement_groups(self, fileid: str,
                         blocknos: list[int]) -> list[list[int]]:
        """Group blocks by primary node so each device writes in order."""
        with self._lock:
            groups: dict[int, list[int]] = {}
            for blockno in sorted(blocknos):
                primary = self._replica_nodes(fileid, blockno)[0]
                groups.setdefault(primary, []).append(blockno)
            return [groups[idx] for idx in sorted(groups)]

    # -- file lifecycle ------------------------------------------------------

    def unlink(self, fileid: str) -> None:
        with self._lock:
            super().unlink(fileid)
            self._lengths.pop(fileid, None)
            self._locations = {key: val for key, val
                               in self._locations.items()
                               if key[0] != fileid}
            self._pending = {key for key in self._pending
                             if key[0] != fileid}
            self._stale = {entry for entry in self._stale
                           if entry[0] != fileid}

    def nblocks(self, fileid: str) -> int:
        with self._lock:
            length = self._lengths.get(fileid)
            if length is None:
                # Reopen path: the dense global length is the max over the
                # nodes' sparse slices (quorum guarantees the tail block
                # survives on >= write_quorum stores).
                length = super().nblocks(fileid)
                self._lengths[fileid] = length
            return length

    # -- block I/O -----------------------------------------------------------

    def write_block(self, fileid: str, blockno: int, data: bytes) -> None:
        self._check_block(data)
        with self._lock:
            current = self.nblocks(fileid)
            if blockno < 0 or blockno > current:
                raise StorageManagerError(
                    f"write would leave a hole in {fileid!r}: "
                    f"block {blockno} of {current}")
            replicas = self._replica_nodes(fileid, blockno)
            written = 0
            failures: list[tuple[int, StorageManagerError]] = []
            for idx in replicas:
                node = self.nodes[idx]
                self._consult_plan(node)
                try:
                    node.write(fileid, blockno, data)
                except StorageManagerError as exc:
                    failures.append((idx, exc))
                else:
                    written += 1
                    self._stale.discard((fileid, blockno, idx))
            needed = min(self.write_quorum, len(replicas))
            if written < needed:
                self.quorum_failures += 1
                raise StorageManagerError(
                    f"quorum write failed for {fileid!r} block {blockno}: "
                    f"{written}/{len(replicas)} replicas took it "
                    f"(need {needed}); first error: {failures[0][1]}")
            for idx, _exc in failures:
                self._stale.add((fileid, blockno, idx))
            self._lengths[fileid] = max(current, blockno + 1)

    def read_block(self, fileid: str, blockno: int) -> bytearray:
        with self._lock:
            total = self.nblocks(fileid)
            if blockno < 0 or blockno >= total:
                raise StorageManagerError(
                    f"read past end of {fileid!r}: block {blockno} "
                    f"of {total}")
            replicas = self._replica_nodes(fileid, blockno)
            fresh = [idx for idx in replicas
                     if (fileid, blockno, idx) not in self._stale]
            stale = [idx for idx in replicas
                     if (fileid, blockno, idx) in self._stale]
            errors: list[StorageManagerError] = []
            for idx in fresh:
                node = self.nodes[idx]
                self._consult_plan(node)
                try:
                    data = node.read(fileid, blockno)
                except StorageManagerError as exc:
                    errors.append(exc)
                    continue
                if stale:
                    self._repair(fileid, blockno, data, stale)
                return data
            detail = f"; last error: {errors[-1]}" if errors else ""
            raise StorageManagerError(
                f"no fresh replica of {fileid!r} block {blockno} is "
                f"readable ({len(fresh)} fresh tried, {len(stale)} stale "
                f"skipped{detail})")

    def _repair(self, fileid: str, blockno: int, data: bytes,
                stale_idxs: list[int]) -> None:
        """Rewrite reachable stale replicas with freshly-read bytes."""
        for idx in stale_idxs:
            node = self.nodes[idx]
            if node.state == "down":
                continue
            try:
                node.write(fileid, blockno, bytes(data))
            except StorageManagerError:
                continue
            self._stale.discard((fileid, blockno, idx))
            self.repairs += 1

    def sync(self, fileid: str) -> None:
        for node in self.nodes:
            if node.state == "down":
                continue
            node.store.sync(fileid)

    # -- scrubbing -----------------------------------------------------------

    def scrub(self, fileids: list[str] | None = None) -> dict[str, int]:
        """Compare replicas block-by-block and repair divergence.

        The authoritative copy of a divergent block is the one whose page
        header carries the highest LSN (the buffer manager stamps a fresh
        LSN on every write-back, so later writes always win).  This is the
        recovery path for stale replicas the in-memory ``_stale`` set no
        longer remembers — after a crash and reopen.
        """
        with self._lock:
            if fileids is None:
                names = set(self._lengths)
                for node in self.nodes:
                    names.update(node.store.files())
                fileids = sorted(names)
            checked = mismatches = repaired = 0
            for fileid in fileids:
                if not self.exists(fileid):
                    continue
                for blockno in range(self.nblocks(fileid)):
                    replicas = self._replica_nodes(fileid, blockno)
                    copies: list[tuple[int, bytearray]] = []
                    for idx in replicas:
                        node = self.nodes[idx]
                        if node.state == "down":
                            continue
                        try:
                            copies.append((idx, node.read(fileid, blockno)))
                        except StorageManagerError:
                            continue
                    checked += 1
                    if len({bytes(data) for _idx, data in copies}) <= 1:
                        continue
                    mismatches += 1
                    best_idx, best = max(
                        copies, key=lambda pair: SlottedPage(pair[1]).lsn)
                    for idx, data in copies:
                        if idx == best_idx or bytes(data) == bytes(best):
                            continue
                        try:
                            self.nodes[idx].write(fileid, blockno,
                                                  bytes(best))
                        except StorageManagerError:
                            continue
                        self._stale.discard((fileid, blockno, idx))
                        repaired += 1
                        self.repairs += 1
            return {"checked": checked, "mismatches": mismatches,
                    "repaired": repaired}

    # -- topology changes ----------------------------------------------------

    def _all_files(self) -> list[str]:
        names = set(self._lengths)
        for node in self.nodes:
            names.update(node.store.files())
        return sorted(name for name in names if self.exists(name))

    def _pin_current_locations(self) -> None:
        """Freeze every block's replica set before placement changes."""
        for fileid in self._all_files():
            for blockno in range(self.nblocks(fileid)):
                key = (fileid, blockno)
                if key not in self._locations:
                    self._locations[key] = self._replica_nodes(fileid,
                                                               blockno)
                self._pending.add(key)

    def add_node(self, node: StorageNode) -> int:
        """Join a node to the ring; returns the number of pending moves.

        Existing blocks keep serving from their pinned locations until
        :meth:`rebalance` migrates them to the new placement.
        """
        with self._lock:
            self._pin_current_locations()
            for fileid in self._all_files():
                node.store.create(fileid)
            self.nodes.append(node)
            self._active.append(len(self.nodes) - 1)
            return len(self._pending)

    def remove_node(self, node_id: str) -> int:
        """Retire a node from placement; returns pending move count.

        The node stays readable (if up) so rebalancing can drain it; it
        simply stops being a placement target.  At least one other node
        must remain active.
        """
        with self._lock:
            for idx, node in enumerate(self.nodes):
                if node.node_id == node_id:
                    break
            else:
                raise StorageManagerError(f"no node named {node_id!r}")
            if idx not in self._active:
                raise StorageManagerError(
                    f"node {node_id!r} is already retired")
            if len(self._active) == 1:
                raise StorageManagerError(
                    "cannot retire the last active node")
            self._pin_current_locations()
            self._active.remove(idx)
            return len(self._pending)

    def rebalance(self, max_moves: int | None = None) -> int:
        """Migrate up to *max_moves* blocks toward current placement.

        Each step copies one block to its new replicas and unpins it;
        reads and writes keep working throughout because unmigrated
        blocks still resolve to their pinned (old) locations.  Returns
        the number of blocks actually moved (conformant blocks are
        unpinned for free and don't count).
        """
        moved = 0
        with self._lock:
            for key in sorted(self._pending):
                if max_moves is not None and moved >= max_moves:
                    break
                fileid, blockno = key
                target = self._placement_replicas(fileid, blockno)
                current = self._locations.get(key, target)
                if set(target) == set(current):
                    self._locations.pop(key, None)
                    self._pending.discard(key)
                    continue
                data = self._read_for_move(fileid, blockno, current)
                for idx in target:
                    if idx not in current:
                        self.nodes[idx].write(fileid, blockno, bytes(data))
                for idx in current:
                    if idx not in target:
                        self.nodes[idx].store.discard(fileid, blockno)
                        self._stale.discard((fileid, blockno, idx))
                self._locations.pop(key, None)
                self._pending.discard(key)
                moved += 1
            self.rebalanced += moved
            return moved

    def _read_for_move(self, fileid: str, blockno: int,
                       current: tuple[int, ...]) -> bytearray:
        errors: list[StorageManagerError] = []
        for idx in current:
            if (fileid, blockno, idx) in self._stale:
                continue
            node = self.nodes[idx]
            self._consult_plan(node)
            try:
                return node.read(fileid, blockno)
            except StorageManagerError as exc:
                errors.append(exc)
        detail = f"; last error: {errors[-1]}" if errors else ""
        raise StorageManagerError(
            f"rebalance cannot read {fileid!r} block {blockno} from any "
            f"fresh replica{detail}")

    # -- introspection -------------------------------------------------------

    def max_busy_s(self) -> float:
        """Service time of the busiest node — the topology's critical path."""
        return max(node.port.busy_s for node in self.nodes)

    def stats(self) -> dict:
        with self._lock:
            totals = {"reads": 0, "writes": 0, "seeks": 0,
                      "platter_switches": 0, "busy_s": 0.0}
            nodes = {}
            for node in self.nodes:
                node_stats = node.stats()
                for key in totals:
                    totals[key] += node_stats[key]
                nodes[node.node_id] = node_stats
            totals.update(
                nodes=nodes,
                active_nodes=len(self._active),
                replication=self.placement.replication,
                write_quorum=self.write_quorum,
                placement=self.placement.describe(),
                replica_lag=len(self._stale),
                pending_moves=len(self._pending),
                rebalanced=self.rebalanced,
                repairs=self.repairs,
                quorum_failures=self.quorum_failures,
            )
            return totals


# ---------------------------------------------------------------------------
# Topology factories
# ---------------------------------------------------------------------------

def _make_placement(placement: str, replication: int,
                    band_blocks: int) -> PlacementPolicy:
    if placement == "range":
        return RangePlacement(replication=replication,
                              band_blocks=band_blocks)
    if placement == "hash":
        return HashPlacement(replication=replication,
                             band_blocks=band_blocks)
    raise StorageManagerError(
        f"unknown placement {placement!r} (have: 'range', 'hash')")


def sharded_memory_manager(clock: SimClock, n_nodes: int = 4,
                           replication: int = 3,
                           write_quorum: int | None = None,
                           placement: str = "range",
                           band_blocks: int = 16,
                           model: DeviceModel | None = None,
                           ) -> ShardedStorageManager:
    """N in-memory nodes, each priced as its own magnetic disk."""
    model = model or magnetic_disk_device()
    nodes = [StorageNode(f"node{k}", MemoryBlockStore(), model, clock)
             for k in range(n_nodes)]
    return ShardedStorageManager(
        clock, nodes,
        placement=_make_placement(placement, replication, band_blocks),
        write_quorum=write_quorum, model=model)


def sharded_disk_manager(directory: str, clock: SimClock, n_nodes: int = 4,
                         replication: int = 3,
                         write_quorum: int | None = None,
                         placement: str = "range",
                         band_blocks: int = 16,
                         model: DeviceModel | None = None,
                         ) -> ShardedStorageManager:
    """N durable nodes, one subdirectory of sparse files per node.

    Reopening the same directory reconstructs the same topology; the
    sharding parameters must match across opens (placement is
    deterministic, so matching parameters find every block where the
    previous process left it).
    """
    model = model or magnetic_disk_device()
    nodes = [StorageNode(f"node{k}",
                         DiskBlockStore(os.path.join(directory,
                                                     f"node{k}")),
                         model, clock)
             for k in range(n_nodes)]
    return ShardedStorageManager(
        clock, nodes,
        placement=_make_placement(placement, replication, band_blocks),
        write_quorum=write_quorum, model=model)
