"""Magnetic-disk block cache and staging area in front of a WORM manager.

§9.3 of the paper: "the WORM storage manager in POSTGRES maintains a
magnetic disk cache of optical disk blocks."  The disk in front of the
jukebox plays three roles:

* **read cache** — a hit costs a magnetic-disk access instead of a jukebox
  access, which is what makes f-chunk "dramatically superior" to the raw
  device on random and 80/20-locality reads (Figure 3);
* **write staging** — heap pages are rewritten many times while they fill
  (new tuples, xmax stamps), which write-once media cannot absorb.  Writes
  land on the cache disk and stay there — the disk is stable storage, so
  :meth:`sync` (the force-at-commit path) is satisfied by the cache itself;
* **archival source** — :meth:`migrate` / :meth:`sync_all` write each
  staged block to the write-once media exactly once, in block order.
  After migration the write-once rule applies: a further write raises
  :class:`~repro.errors.WriteOnceViolation` from the backing manager,
  exactly as a real WORM would refuse.

The hot set lives in an LRU of ``capacity_blocks``; blocks evicted while
still unarchived spill to an unbounded *staged* area that models the rest
of the magnetic disk (reads from it cost disk accesses, not jukebox ones).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import StorageManagerError
from repro.sim.clock import SimClock
from repro.sim.devices import DeviceModel, DevicePort, magnetic_disk_device
from repro.smgr.base import StorageManager
from repro.storage.constants import PAGE_SIZE


class _CachedBlock:
    __slots__ = ("data", "dirty")

    def __init__(self, data: bytes, dirty: bool):
        self.data = data
        self.dirty = dirty


class CachedStorageManager(StorageManager):
    """Write-staging LRU disk cache wrapped around another storage manager."""

    def __init__(self, base: StorageManager, clock: SimClock,
                 capacity_blocks: int = 1024,
                 cache_model: DeviceModel | None = None):
        model = cache_model or magnetic_disk_device()
        super().__init__(model, clock)
        self.name = base.name
        self.base = base
        self.capacity_blocks = capacity_blocks
        self._lru: OrderedDict[tuple[str, int], _CachedBlock] = OrderedDict()
        #: Unarchived blocks evicted from the LRU (still on the cache disk).
        self._staged: dict[tuple[str, int], bytes] = {}
        #: Cache-side view of each file's length (>= the base's).
        self._nblocks: dict[str, int] = {}
        self.cache_port = DevicePort(model, clock)
        self.hits = 0
        self.misses = 0
        self.migrations = 0
        #: Cache-file slot per key, assigned in arrival order so that
        #: streaming inserts write the cache disk sequentially.
        self._slots: dict[tuple[str, int], int] = {}
        self._next_slot = 0

    # -- cache internals ----------------------------------------------------

    def _cache_offset(self, key: tuple[str, int]) -> int:
        """Cache-file offset for cost charging (arrival order)."""
        slot = self._slots.get(key)
        if slot is None:
            slot = self._next_slot
            self._next_slot += 1
            self._slots[key] = slot
        return slot * PAGE_SIZE

    def _charge_cache(self, key: tuple[str, int], is_write: bool) -> None:
        offset = self._cache_offset(key)
        if is_write:
            self.cache_port.charge_write("worm-cache", offset, PAGE_SIZE)
        else:
            self.cache_port.charge_read("worm-cache", offset, PAGE_SIZE)

    def _insert(self, key: tuple[str, int], data: bytes,
                dirty: bool) -> None:
        block = self._lru.get(key)
        if block is not None:
            self._lru.move_to_end(key)
            block.data = data
            block.dirty = block.dirty or dirty
        else:
            self._lru[key] = _CachedBlock(data, dirty)
        self._charge_cache(key, is_write=True)
        while len(self._lru) > self.capacity_blocks:
            victim_key, victim = self._lru.popitem(last=False)
            if victim.dirty:
                # Still unarchived: spill to the staging area (it is
                # already on the cache disk — no extra charge).
                self._staged[victim_key] = victim.data

    def invalidate(self, fileid: str) -> None:
        """Drop *clean* cached blocks of *fileid* (cold-start helper).

        Dirty and staged blocks are the only copy of unarchived data and
        are kept.
        """
        stale = [key for key, block in self._lru.items()
                 if key[0] == fileid and not block.dirty]
        for key in stale:
            del self._lru[key]

    # -- file lifecycle ---------------------------------------------------------

    def create(self, fileid: str) -> None:
        self.base.create(fileid)
        self._nblocks.setdefault(fileid, self.base.nblocks(fileid))

    def exists(self, fileid: str) -> bool:
        return self.base.exists(fileid)

    def unlink(self, fileid: str) -> None:
        for key in [k for k in self._lru if k[0] == fileid]:
            del self._lru[key]
        for key in [k for k in self._staged if k[0] == fileid]:
            del self._staged[key]
        self._nblocks.pop(fileid, None)
        self.base.unlink(fileid)

    def nblocks(self, fileid: str) -> int:
        known = self._nblocks.get(fileid)
        if known is None:
            known = self.base.nblocks(fileid)
            self._nblocks[fileid] = known
        return known

    def sync(self, fileid: str) -> None:
        """Force-at-commit: satisfied by the (stable) cache disk.

        Data moves to the write-once media only at archive time
        (:meth:`migrate` / :meth:`sync_all`), as in the POSTGRES jukebox
        manager.
        """
        self.nblocks(fileid)  # validate existence

    # -- archival ------------------------------------------------------------------

    def migrate(self, fileid: str) -> int:
        """Write every unarchived block of *fileid* to the media, in
        block order; returns the number migrated."""
        base_blocks = self.base.nblocks(fileid)
        total = self.nblocks(fileid)
        migrated = 0
        for blockno in range(base_blocks, total):
            key = (fileid, blockno)
            staged = self._staged.pop(key, None)
            if staged is not None:
                data = staged
                block = self._lru.get(key)
                if block is not None:
                    block.dirty = False
            else:
                block = self._lru.get(key)
                if block is None:
                    raise StorageManagerError(
                        f"unarchived block {blockno} of {fileid!r} "
                        f"lost from the cache")
                data = block.data
                block.dirty = False
            self.base.write_block(fileid, blockno, data)
            migrated += 1
        self.migrations += migrated
        return migrated

    def sync_all(self) -> None:
        """Archive every file's unarchived blocks (checkpoint to media)."""
        for fileid in sorted(self._nblocks):
            if self.base.exists(fileid):
                self.migrate(fileid)

    # -- block I/O -------------------------------------------------------------------

    def read_block(self, fileid: str, blockno: int) -> bytearray:
        key = (fileid, blockno)
        block = self._lru.get(key)
        if block is not None:
            self.hits += 1
            self._lru.move_to_end(key)
            self._charge_cache(key, is_write=False)
            return bytearray(block.data)
        staged = self._staged.get(key)
        if staged is not None:
            # On the cache disk, outside the hot set: disk-speed read.
            self.hits += 1
            self._charge_cache(key, is_write=False)
            return bytearray(staged)
        self.misses += 1
        data = self.base.read_block(fileid, blockno)
        self._insert(key, bytes(data), dirty=False)
        return data

    def write_block(self, fileid: str, blockno: int, data: bytes) -> None:
        self._check_block(data)
        current = self.nblocks(fileid)
        base_blocks = self.base.nblocks(fileid)
        if blockno < base_blocks:
            # Already on write-once media: let the base refuse loudly.
            self.base.write_block(fileid, blockno, data)
            return
        if blockno > current:
            raise StorageManagerError(
                f"write would leave a hole in {fileid!r}: block {blockno} "
                f"of {current}")
        key = (fileid, blockno)
        if key in self._staged:
            self._staged[key] = bytes(data)
            self._charge_cache(key, is_write=True)
        else:
            self._insert(key, bytes(data), dirty=True)
        self._nblocks[fileid] = max(current, blockno + 1)

    # -- introspection ---------------------------------------------------------

    def hit_rate(self) -> float:
        """Fraction of reads satisfied from the cache disk."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int]:
        stats = self.base.stats()
        stats.update(cache_hits=self.hits, cache_misses=self.misses,
                     cached_blocks=len(self._lru),
                     staged_blocks=len(self._staged),
                     migrations=self.migrations)
        return stats
