"""Main-memory (NVRAM) storage manager.

The paper's second manager "allows relational data to be stored in
non-volatile random-access memory."  It is the simplest possible
single-node instance of the node-addressed layer: one
:class:`~repro.smgr.base.MemoryBlockStore` behind one
:class:`~repro.smgr.base.StorageNode` whose port is the manager's own, so
cost accounting is exactly the classic one-device behavior (no positioning
cost, memcpy-speed transfer by default).
"""

from __future__ import annotations

from repro.sim.clock import SimClock
from repro.sim.devices import DeviceModel, nvram_device
from repro.smgr.base import (MemoryBlockStore, NodeAddressedManager,
                             StorageNode)


class MemoryStorageManager(NodeAddressedManager):
    """Relation files as in-memory block maps on a single node."""

    name = "memory"

    def __init__(self, clock: SimClock, model: DeviceModel | None = None):
        model = model or nvram_device()
        super().__init__(model, clock)
        store = MemoryBlockStore()
        # The node shares the manager's port: one device, one head.
        self.nodes = [StorageNode("memory0", store, model, clock,
                                  port=self.port)]
        #: The raw block map, exposed for white-box tests (page tearing).
        self._files = store._files
