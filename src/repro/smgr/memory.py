"""Main-memory (NVRAM) storage manager.

The paper's second manager "allows relational data to be stored in
non-volatile random-access memory."  Blocks are kept in process memory;
the cost model has no positioning cost and memcpy-speed transfer.
"""

from __future__ import annotations

from repro.errors import StorageManagerError
from repro.sim.clock import SimClock
from repro.sim.devices import DeviceModel, nvram_device
from repro.smgr.base import StorageManager
from repro.storage.constants import PAGE_SIZE


class MemoryStorageManager(StorageManager):
    """Relation files as in-memory lists of blocks."""

    name = "memory"

    def __init__(self, clock: SimClock, model: DeviceModel | None = None):
        super().__init__(model or nvram_device(), clock)
        self._files: dict[str, list[bytearray]] = {}

    def _blocks(self, fileid: str) -> list[bytearray]:
        if fileid not in self._files:
            raise StorageManagerError(
                f"relation file {fileid!r} does not exist")
        return self._files[fileid]

    def create(self, fileid: str) -> None:
        self._files.setdefault(fileid, [])

    def exists(self, fileid: str) -> bool:
        return fileid in self._files

    def unlink(self, fileid: str) -> None:
        self._files.pop(fileid, None)

    def nblocks(self, fileid: str) -> int:
        return len(self._blocks(fileid))

    def read_block(self, fileid: str, blockno: int) -> bytearray:
        blocks = self._blocks(fileid)
        if blockno < 0 or blockno >= len(blocks):
            raise StorageManagerError(
                f"read past end of {fileid!r}: block {blockno} "
                f"of {len(blocks)}")
        self.port.charge_read(fileid, blockno * PAGE_SIZE, PAGE_SIZE)
        return bytearray(blocks[blockno])

    def write_block(self, fileid: str, blockno: int, data: bytes) -> None:
        self._check_block(data)
        blocks = self._blocks(fileid)
        if blockno < 0 or blockno > len(blocks):
            raise StorageManagerError(
                f"write would leave a hole in {fileid!r}: block {blockno} "
                f"of {len(blocks)}")
        if blockno == len(blocks):
            blocks.append(bytearray(data))
        else:
            blocks[blockno] = bytearray(data)
        self.port.charge_write(fileid, blockno * PAGE_SIZE, PAGE_SIZE)

    def sync(self, fileid: str) -> None:
        self._blocks(fileid)  # validate existence; NVRAM is always durable
