"""User-defined storage managers (the paper's §7).

POSTGRES routes every relation file through a *storage manager switch*
modelled on the UNIX file-system switch: a small table of interface routines
(create / read / write / extend / nblocks / unlink / sync).  Any user can
register a new manager, and — because large objects and Inversion files are
ordinary relations — every new manager automatically supports them (§10).

Three managers ship with this reproduction, matching POSTGRES Version 4:

* ``"disk"``  — local magnetic disk, a thin veneer over OS files;
* ``"memory"`` — non-volatile main memory;
* ``"worm"``  — a write-once optical-disk jukebox, fronted by a
  magnetic-disk block cache (see :mod:`repro.smgr.cache`).

A fourth registration, ``"faulty"`` (:mod:`repro.smgr.faulty`), wraps the
``"disk"`` manager with scripted fault injection — the crash-recovery
harness routes relations through it to break commits at exact points.
"""

from repro.smgr.base import StorageManager, StorageManagerSwitch
from repro.smgr.cache import CachedStorageManager
from repro.smgr.disk import DiskStorageManager
from repro.smgr.faulty import FaultInjector
from repro.smgr.memory import MemoryStorageManager
from repro.smgr.raw import RawWormDevice
from repro.smgr.worm import WormStorageManager

__all__ = [
    "StorageManager",
    "StorageManagerSwitch",
    "DiskStorageManager",
    "MemoryStorageManager",
    "WormStorageManager",
    "CachedStorageManager",
    "FaultInjector",
    "RawWormDevice",
]
