"""User-defined storage managers (the paper's §7).

POSTGRES routes every relation file through a *storage manager switch*
modelled on the UNIX file-system switch: a small table of interface routines
(create / read / write / extend / nblocks / unlink / sync).  Any user can
register a new manager, and — because large objects and Inversion files are
ordinary relations — every new manager automatically supports them (§10).

Managers are built from a node-addressed layer (:mod:`repro.smgr.base`):
raw :class:`BlockStore` containers behind :class:`StorageNode` instances
(each with its own device cost model and failure state), routed by a
:class:`PlacementPolicy`.  The registrations shipped with this
reproduction:

* ``"disk"``   — local magnetic disk, a single-node veneer over OS files;
* ``"memory"`` — non-volatile main memory, single-node;
* ``"worm"``   — a write-once optical-disk jukebox, fronted by a
  magnetic-disk block cache (see :mod:`repro.smgr.cache`);
* ``"sharded"`` — blocks striped across N simulated nodes with R-of-N
  quorum replication, read-repair, and rebalancing
  (:mod:`repro.smgr.sharded`);
* ``"faulty"`` (:mod:`repro.smgr.faulty`) — wraps another manager with
  scripted fault injection; the crash-recovery harness routes relations
  through it to break commits at exact points.
"""

from repro.smgr.base import (BlockStore, DiskBlockStore, HashPlacement,
                             MemoryBlockStore, NodeAddressedManager,
                             PlacementPolicy, RangePlacement,
                             SingleNodePlacement, StorageManager,
                             StorageManagerSwitch, StorageNode)
from repro.smgr.cache import CachedStorageManager
from repro.smgr.disk import DiskStorageManager
from repro.smgr.faulty import FaultInjector
from repro.smgr.memory import MemoryStorageManager
from repro.smgr.raw import RawWormDevice
from repro.smgr.sharded import (ShardedStorageManager, sharded_disk_manager,
                                sharded_memory_manager)
from repro.smgr.worm import WormStorageManager

__all__ = [
    "StorageManager",
    "StorageManagerSwitch",
    "BlockStore",
    "MemoryBlockStore",
    "DiskBlockStore",
    "StorageNode",
    "PlacementPolicy",
    "SingleNodePlacement",
    "HashPlacement",
    "RangePlacement",
    "NodeAddressedManager",
    "DiskStorageManager",
    "MemoryStorageManager",
    "WormStorageManager",
    "CachedStorageManager",
    "ShardedStorageManager",
    "sharded_memory_manager",
    "sharded_disk_manager",
    "FaultInjector",
    "RawWormDevice",
]
