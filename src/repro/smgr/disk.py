"""Magnetic-disk storage manager: a thin veneer over the OS file system.

This is the paper's first manager — "storage of classes on local magnetic
disk … a thin veneer on top of the UNIX file system."  It is a single-node
instance of the node-addressed layer: one
:class:`~repro.smgr.base.DiskBlockStore` (one real file per relation under
the database's data directory) behind one
:class:`~repro.smgr.base.StorageNode` whose port is the manager's own, so
every physical access charges the magnetic-disk cost model exactly as the
classic one-device manager did.
"""

from __future__ import annotations

from repro.sim.clock import SimClock
from repro.sim.devices import DeviceModel, magnetic_disk_device
from repro.smgr.base import (DiskBlockStore, NodeAddressedManager,
                             StorageNode)


class DiskStorageManager(NodeAddressedManager):
    """Relation files as ordinary OS files, one per relation, one node."""

    name = "disk"

    def __init__(self, directory: str, clock: SimClock,
                 model: DeviceModel | None = None):
        model = model or magnetic_disk_device()
        super().__init__(model, clock)
        store = DiskBlockStore(directory)
        self.nodes = [StorageNode("disk0", store, model, clock,
                                  port=self.port)]
        self.directory = directory
        #: Cached OS file handles (owned by the store; aliased for tests).
        self._handles = store._handles

    def _path(self, fileid: str) -> str:
        return self.nodes[0].store._path(fileid)
