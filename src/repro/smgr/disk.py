"""Magnetic-disk storage manager: a thin veneer over the OS file system.

This is the paper's first manager — "storage of classes on local magnetic
disk … a thin veneer on top of the UNIX file system."  Blocks live in one
real file per relation under the database's data directory; every physical
access additionally charges the magnetic-disk cost model so simulated
elapsed times reflect seeks and transfer.
"""

from __future__ import annotations

import os

from repro.errors import StorageManagerError
from repro.sim.clock import SimClock
from repro.sim.devices import DeviceModel, magnetic_disk_device
from repro.smgr.base import StorageManager
from repro.storage.constants import PAGE_SIZE


def _safe_name(fileid: str) -> str:
    """Map a relation file id to a safe on-disk file name."""
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in fileid)


class DiskStorageManager(StorageManager):
    """Relation files as ordinary OS files, one per relation."""

    name = "disk"

    def __init__(self, directory: str, clock: SimClock,
                 model: DeviceModel | None = None):
        super().__init__(model or magnetic_disk_device(), clock)
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._handles: dict[str, "os.PathLike | object"] = {}

    def _path(self, fileid: str) -> str:
        return os.path.join(self.directory, _safe_name(fileid) + ".rel")

    def _open(self, fileid: str):
        handle = self._handles.get(fileid)
        if handle is None or handle.closed:
            path = self._path(fileid)
            if not os.path.exists(path):
                raise StorageManagerError(
                    f"relation file {fileid!r} does not exist")
            handle = open(path, "r+b")
            self._handles[fileid] = handle
        return handle

    # -- file lifecycle ----------------------------------------------------

    def create(self, fileid: str) -> None:
        path = self._path(fileid)
        if not os.path.exists(path):
            with open(path, "wb"):
                pass

    def exists(self, fileid: str) -> bool:
        return os.path.exists(self._path(fileid))

    def unlink(self, fileid: str) -> None:
        handle = self._handles.pop(fileid, None)
        if handle is not None and not handle.closed:
            handle.close()
        path = self._path(fileid)
        if os.path.exists(path):
            os.remove(path)

    def nblocks(self, fileid: str) -> int:
        path = self._path(fileid)
        if not os.path.exists(path):
            raise StorageManagerError(
                f"relation file {fileid!r} does not exist")
        return os.path.getsize(path) // PAGE_SIZE

    # -- block I/O -----------------------------------------------------------

    def read_block(self, fileid: str, blockno: int) -> bytearray:
        if blockno < 0 or blockno >= self.nblocks(fileid):
            raise StorageManagerError(
                f"read past end of {fileid!r}: block {blockno} "
                f"of {self.nblocks(fileid)}")
        handle = self._open(fileid)
        offset = blockno * PAGE_SIZE
        handle.seek(offset)
        data = bytearray(handle.read(PAGE_SIZE))
        self.port.charge_read(fileid, offset, PAGE_SIZE)
        return data

    def write_block(self, fileid: str, blockno: int, data: bytes) -> None:
        self._check_block(data)
        current = self.nblocks(fileid)
        if blockno < 0 or blockno > current:
            raise StorageManagerError(
                f"write would leave a hole in {fileid!r}: block {blockno} "
                f"of {current}")
        handle = self._open(fileid)
        offset = blockno * PAGE_SIZE
        handle.seek(offset)
        handle.write(data)
        self.port.charge_write(fileid, offset, PAGE_SIZE)

    def sync(self, fileid: str) -> None:
        handle = self._handles.get(fileid)
        if handle is not None and not handle.closed:
            handle.flush()
            os.fsync(handle.fileno())

    def close(self) -> None:
        """Close all cached OS file handles."""
        for handle in self._handles.values():
            if not handle.closed:
                handle.close()
        self._handles.clear()
