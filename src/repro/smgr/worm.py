"""Write-once (WORM) optical-jukebox storage manager.

The paper's third manager "supports data on a local or remote optical disk
WORM jukebox."  Two properties matter for the reproduction:

* **write-once** — a block, once written, can never be rewritten.  The
  no-overwrite POSTGRES storage system is compatible with this by design;
  the manager raises :class:`~repro.errors.WriteOnceViolation` on any
  attempt to overwrite, which the test suite uses to verify that the heap
  never tries.
* **slow, platter-structured media** — the jukebox cost model charges long
  seeks and multi-second platter exchanges.  Blocks from all relation files
  are allocated sequentially on the media (WORM media is append-only), so a
  file's logical blocks are physically contiguous only if written
  contiguously — exactly the behaviour that makes the disk cache in front
  of this manager (see :mod:`repro.smgr.cache`) pay off so dramatically in
  the paper's Figure 3.

Media contents are held in process memory: actual optical hardware is not
available, and durability of the simulated media is not what the paper's
experiments measure.
"""

from __future__ import annotations

from repro.errors import StorageManagerError, WriteOnceViolation
from repro.sim.clock import SimClock
from repro.sim.devices import DeviceModel, jukebox_device
from repro.smgr.base import StorageManager
from repro.storage.constants import PAGE_SIZE


class WormStorageManager(StorageManager):
    """Relation files on simulated write-once jukebox media."""

    name = "worm"

    def __init__(self, clock: SimClock, model: DeviceModel | None = None):
        super().__init__(model or jukebox_device(), clock)
        #: (fileid, blockno) -> global media block number.
        self._placement: dict[tuple[str, int], int] = {}
        #: global media block number -> block bytes.
        self._media: list[bytes] = []
        self._nblocks: dict[str, int] = {}

    # -- file lifecycle ----------------------------------------------------

    def create(self, fileid: str) -> None:
        self._nblocks.setdefault(fileid, 0)

    def exists(self, fileid: str) -> bool:
        return fileid in self._nblocks

    def unlink(self, fileid: str) -> None:
        """Forget the file's placement map.

        The media blocks themselves are write-once and cannot be reclaimed —
        just like a real WORM platter; only the mapping is dropped.
        """
        if fileid in self._nblocks:
            count = self._nblocks.pop(fileid)
            for blockno in range(count):
                self._placement.pop((fileid, blockno), None)

    def nblocks(self, fileid: str) -> int:
        if fileid not in self._nblocks:
            raise StorageManagerError(
                f"relation file {fileid!r} does not exist")
        return self._nblocks[fileid]

    # -- block I/O -----------------------------------------------------------

    def read_block(self, fileid: str, blockno: int) -> bytearray:
        if blockno < 0 or blockno >= self.nblocks(fileid):
            raise StorageManagerError(
                f"read past end of {fileid!r}: block {blockno} "
                f"of {self.nblocks(fileid)}")
        media_block = self._placement[(fileid, blockno)]
        offset = media_block * PAGE_SIZE
        self.port.charge_read("worm-media", offset, PAGE_SIZE)
        return bytearray(self._media[media_block])

    def write_block(self, fileid: str, blockno: int, data: bytes) -> None:
        self._check_block(data)
        current = self.nblocks(fileid)
        if (fileid, blockno) in self._placement:
            raise WriteOnceViolation(
                f"block {blockno} of {fileid!r} is already written; "
                f"WORM media cannot be overwritten")
        if blockno < 0 or blockno > current:
            raise StorageManagerError(
                f"write would leave a hole in {fileid!r}: block {blockno} "
                f"of {current}")
        media_block = len(self._media)
        self._media.append(bytes(data))
        self._placement[(fileid, blockno)] = media_block
        self._nblocks[fileid] = max(current, blockno + 1)
        self.port.charge_write("worm-media", media_block * PAGE_SIZE,
                               PAGE_SIZE)

    def sync(self, fileid: str) -> None:
        self.nblocks(fileid)  # validate existence; media writes are final

    def media_blocks_used(self) -> int:
        """Total blocks consumed on the media (including dead files)."""
        return len(self._media)
