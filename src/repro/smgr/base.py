"""Storage-manager abstraction, the node-addressed layer, and the switch.

A storage manager exposes block-oriented access to named relation files.
Blocks are exactly :data:`~repro.storage.constants.PAGE_SIZE` bytes.  The
abstraction is deliberately small — the paper calls it "a clean table-driven
interface … any user can define a new storage manager by writing and
registering a small set of interface routines."

Physical placement is a first-class concern here, split across three
pieces:

* a :class:`BlockStore` is a raw, *sparse* block container (process memory
  or one directory of OS files) with no cost model and no failure model;
* a :class:`StorageNode` pairs one store with its own
  :class:`~repro.sim.devices.DeviceModel`/:class:`~repro.sim.devices.DevicePort`
  (so each node has an independent disk head and busy-time accumulator)
  and an independent failure state (``up``/``down``/``slow``/``flaky``);
* a :class:`PlacementPolicy` maps ``(fileid, blockno)`` to an R-of-N
  replica set of node positions — single-node, hash-banded, or
  range-banded sharding.

:class:`NodeAddressedManager` composes the three into a manager.  The
classic ``disk`` and ``memory`` managers are trivial single-node instances
of it; :mod:`repro.smgr.sharded` builds the replicated multi-node manager
on the same parts.

All managers charge their physical accesses to a shared
:class:`~repro.sim.clock.SimClock` through their nodes' ports, so benchmark
elapsed times reflect each device's cost model.
"""

from __future__ import annotations

import itertools
import os
import zlib
from abc import ABC, abstractmethod
from typing import Callable, Iterator

from repro.errors import NodeDownError, StorageManagerError
from repro.sim.clock import SimClock
from repro.sim.devices import DeviceModel, DevicePort
from repro.storage.constants import PAGE_SIZE

#: Monotone source for per-instance manager identities (never reused, so a
#: replaced manager can never alias a live one the way ``id()`` could).
_SMGR_SEQ = itertools.count()


# ---------------------------------------------------------------------------
# Raw block containers
# ---------------------------------------------------------------------------

class BlockStore(ABC):
    """A raw block container: bytes at ``(fileid, blockno)``, nothing else.

    Stores charge no simulated cost and enforce no density: a write at any
    non-negative block number succeeds, and :meth:`nblocks` reports one
    past the highest block ever written.  The "no holes" contract of the
    manager API is enforced one level up, which is what lets a sharded
    manager keep only its own slice of a file on each node's store.
    """

    @abstractmethod
    def create(self, fileid: str) -> None:
        """Create an empty file.  Idempotent."""

    @abstractmethod
    def exists(self, fileid: str) -> bool:
        """Whether the file exists."""

    @abstractmethod
    def unlink(self, fileid: str) -> None:
        """Remove the file and its blocks."""

    @abstractmethod
    def nblocks(self, fileid: str) -> int:
        """One past the highest block written (0 for a fresh file)."""

    @abstractmethod
    def read(self, fileid: str, blockno: int) -> bytearray:
        """The block's bytes; holes inside the store read as zeros."""

    @abstractmethod
    def write(self, fileid: str, blockno: int, data: bytes) -> None:
        """Store the block (sparse: any non-negative *blockno*)."""

    def discard(self, fileid: str, blockno: int) -> None:
        """Forget one block if the medium supports it (rebalance cleanup)."""

    def sync(self, fileid: str) -> None:
        """Force the file to stable storage."""

    def files(self) -> list[str]:
        """File ids present on this store (best effort, for maintenance)."""
        return []

    def close(self) -> None:
        """Release OS resources (file handles)."""


class MemoryBlockStore(BlockStore):
    """Blocks in process memory: ``{fileid: {blockno: bytearray}}``."""

    def __init__(self) -> None:
        self._files: dict[str, dict[int, bytearray]] = {}

    def _blocks(self, fileid: str) -> dict[int, bytearray]:
        if fileid not in self._files:
            raise StorageManagerError(
                f"relation file {fileid!r} does not exist")
        return self._files[fileid]

    def create(self, fileid: str) -> None:
        self._files.setdefault(fileid, {})

    def exists(self, fileid: str) -> bool:
        return fileid in self._files

    def unlink(self, fileid: str) -> None:
        self._files.pop(fileid, None)

    def nblocks(self, fileid: str) -> int:
        blocks = self._blocks(fileid)
        return max(blocks) + 1 if blocks else 0

    def read(self, fileid: str, blockno: int) -> bytearray:
        block = self._blocks(fileid).get(blockno)
        if block is None:
            return bytearray(PAGE_SIZE)
        return bytearray(block)

    def write(self, fileid: str, blockno: int, data: bytes) -> None:
        self._blocks(fileid)[blockno] = bytearray(data)

    def discard(self, fileid: str, blockno: int) -> None:
        self._files.get(fileid, {}).pop(blockno, None)

    def sync(self, fileid: str) -> None:
        self._blocks(fileid)  # validate existence; memory is always durable

    def files(self) -> list[str]:
        return sorted(self._files)


def _safe_name(fileid: str) -> str:
    """Map a relation file id to a safe on-disk file name."""
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in fileid)


class DiskBlockStore(BlockStore):
    """Blocks in ordinary OS files, one ``<safe_name>.rel`` per file.

    Writes seek to ``blockno * PAGE_SIZE`` unconditionally, so a store
    holding only a shard of a file is simply sparse — the OS materializes
    the holes as zeros and :meth:`nblocks` still lands on the true tail.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._handles: dict[str, object] = {}

    def _path(self, fileid: str) -> str:
        return os.path.join(self.directory, _safe_name(fileid) + ".rel")

    def _open(self, fileid: str):
        handle = self._handles.get(fileid)
        if handle is None or handle.closed:
            path = self._path(fileid)
            if not os.path.exists(path):
                raise StorageManagerError(
                    f"relation file {fileid!r} does not exist")
            handle = open(path, "r+b")
            self._handles[fileid] = handle
        return handle

    def create(self, fileid: str) -> None:
        path = self._path(fileid)
        if not os.path.exists(path):
            with open(path, "wb"):
                pass

    def exists(self, fileid: str) -> bool:
        return os.path.exists(self._path(fileid))

    def unlink(self, fileid: str) -> None:
        handle = self._handles.pop(fileid, None)
        if handle is not None and not handle.closed:
            handle.close()
        path = self._path(fileid)
        if os.path.exists(path):
            os.remove(path)

    def nblocks(self, fileid: str) -> int:
        path = self._path(fileid)
        if not os.path.exists(path):
            raise StorageManagerError(
                f"relation file {fileid!r} does not exist")
        return os.path.getsize(path) // PAGE_SIZE

    def read(self, fileid: str, blockno: int) -> bytearray:
        handle = self._open(fileid)
        handle.seek(blockno * PAGE_SIZE)
        data = bytearray(handle.read(PAGE_SIZE))
        if len(data) < PAGE_SIZE:  # sparse tail
            data.extend(bytes(PAGE_SIZE - len(data)))
        return data

    def write(self, fileid: str, blockno: int, data: bytes) -> None:
        handle = self._open(fileid)
        handle.seek(blockno * PAGE_SIZE)
        handle.write(data)

    def sync(self, fileid: str) -> None:
        handle = self._handles.get(fileid)
        if handle is not None and not handle.closed:
            handle.flush()
            os.fsync(handle.fileno())

    def files(self) -> list[str]:
        # Safe names are identical to the file id for every id the engine
        # generates (heap_*/btree_*/lo_*); ids needing escaping must be
        # passed to maintenance entry points explicitly.
        return sorted(entry[:-len(".rel")]
                      for entry in os.listdir(self.directory)
                      if entry.endswith(".rel"))

    def close(self) -> None:
        for handle in self._handles.values():
            if not handle.closed:
                handle.close()
        self._handles.clear()


# ---------------------------------------------------------------------------
# Storage nodes
# ---------------------------------------------------------------------------

#: Failure states a node can be put in (the fault DSL's node actions).
NODE_STATES = ("up", "down", "slow", "flaky")


class StorageNode:
    """One storage node: a block store, its own device, its own health.

    Each node owns a :class:`~repro.sim.devices.DevicePort`, so it has an
    independent head position (interleaving two nodes stays sequential on
    both) and an independent ``busy_s`` accumulator (the critical-path
    number a multi-node topology reports).  The failure state models what
    the fault DSL's ``on node <k>: …`` rules inject:

    * ``down``  — every access raises :class:`~repro.errors.NodeDownError`;
    * ``slow``  — accesses succeed but charge ``slow_factor×`` the cost;
    * ``flaky`` — every ``flaky_every``-th access raises a device error;
    * ``up``    — healthy.
    """

    def __init__(self, node_id: str, store: BlockStore, model: DeviceModel,
                 clock: SimClock, port: DevicePort | None = None,
                 slow_factor: float = 4.0, flaky_every: int = 3):
        self.node_id = node_id
        self.store = store
        self.model = model
        self.clock = clock
        self.port = port if port is not None else DevicePort(model, clock)
        self.state = "up"
        self.slow_factor = slow_factor
        self.flaky_every = max(1, flaky_every)
        self._ops = 0
        #: Accesses refused (down) or dropped (flaky) by this node.
        self.errors = 0

    def set_state(self, state: str) -> bool:
        """Set the failure state; returns True when it actually changed."""
        if state not in NODE_STATES:
            raise ValueError(
                f"unknown node state {state!r} (have: {NODE_STATES})")
        changed = state != self.state
        self.state = state
        return changed

    def _gate(self, op: str, fileid: str, blockno: int) -> None:
        if self.state == "down":
            self.errors += 1
            raise NodeDownError(
                f"node {self.node_id!r} is down "
                f"({op} {fileid!r} block {blockno})")
        self._ops += 1
        if self.state == "flaky" and self._ops % self.flaky_every == 0:
            self.errors += 1
            raise StorageManagerError(
                f"flaky node {self.node_id!r} dropped {op} of "
                f"{fileid!r} block {blockno}")

    def read(self, fileid: str, blockno: int) -> bytearray:
        """Read one block, charging this node's device."""
        self._gate("read", fileid, blockno)
        data = self.store.read(fileid, blockno)
        charged = self.port.charge_read(
            fileid, blockno * PAGE_SIZE, PAGE_SIZE)
        if self.state == "slow":
            self.port.charge_extra(
                charged * (self.slow_factor - 1.0), "io.read")
        return data

    def write(self, fileid: str, blockno: int, data: bytes) -> None:
        """Write one block, charging this node's device."""
        self._gate("write", fileid, blockno)
        self.store.write(fileid, blockno, data)
        charged = self.port.charge_write(
            fileid, blockno * PAGE_SIZE, PAGE_SIZE)
        if self.state == "slow":
            self.port.charge_extra(
                charged * (self.slow_factor - 1.0), "io.write")

    def stats(self) -> dict:
        """Per-node counters for ``db.statistics()["storage"]``."""
        return {**self.port.stats(),
                "state": self.state,
                "errors": self.errors}


# ---------------------------------------------------------------------------
# Placement policies
# ---------------------------------------------------------------------------

def stable_hash(text: str) -> int:
    """A placement hash that survives process restarts.

    Python's builtin ``hash`` is salted per process, which would scatter a
    reopened database's blocks onto different nodes than the ones that
    hold them — placement must use a deterministic digest.
    """
    return zlib.crc32(text.encode("utf-8"))


class PlacementPolicy(ABC):
    """Maps ``(fileid, blockno)`` to an ordered replica set of nodes.

    Replicas are returned as *positions* into the manager's active-node
    list (position 0 is the primary), so policies stay oblivious to node
    identity and to retired nodes.
    """

    #: Copies kept of every block (R in R-of-N).
    replication = 1

    @abstractmethod
    def replicas(self, fileid: str, blockno: int,
                 n_nodes: int) -> tuple[int, ...]:
        """Ordered, duplicate-free node positions for this block."""

    def describe(self) -> str:
        return f"{type(self).__name__}(replication={self.replication})"


class SingleNodePlacement(PlacementPolicy):
    """Everything on node 0 — the classic one-device manager."""

    def replicas(self, fileid: str, blockno: int,
                 n_nodes: int) -> tuple[int, ...]:
        return (0,)


class _BandedPlacement(PlacementPolicy):
    """Shared machinery: place *bands* of consecutive blocks, not blocks.

    Scattering consecutive blocks across nodes round-robin would make
    every per-node access non-sequential (a seek per page), throwing away
    exactly the streaming performance sharding is meant to multiply.
    Banding keeps runs of ``band_blocks`` blocks on one node, so each node
    sees sequential I/O within a band while bands still spread across the
    cluster.
    """

    def __init__(self, replication: int = 1, band_blocks: int = 16):
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if band_blocks < 1:
            raise ValueError(f"band_blocks must be >= 1, got {band_blocks}")
        self.replication = replication
        self.band_blocks = band_blocks

    def _spread(self, primary: int, n_nodes: int) -> tuple[int, ...]:
        count = min(self.replication, n_nodes)
        return tuple((primary + i) % n_nodes for i in range(count))

    def describe(self) -> str:
        return (f"{type(self).__name__}(replication={self.replication}, "
                f"band_blocks={self.band_blocks})")


class HashPlacement(_BandedPlacement):
    """Primary node = hash of ``(fileid, band)``: uniform, history-free."""

    def replicas(self, fileid: str, blockno: int,
                 n_nodes: int) -> tuple[int, ...]:
        band = blockno // self.band_blocks
        primary = stable_hash(f"{fileid}:{band}") % n_nodes
        return self._spread(primary, n_nodes)


class RangePlacement(_BandedPlacement):
    """Consecutive bands round-robin across nodes (range sharding).

    A file's bands land on ``start, start+1, …`` mod N, where ``start``
    hashes the file id so different files begin on different nodes.  A
    streaming scan therefore visits nodes in long runs, and disjoint-range
    writers to one big object naturally land on disjoint nodes.
    """

    def replicas(self, fileid: str, blockno: int,
                 n_nodes: int) -> tuple[int, ...]:
        band = blockno // self.band_blocks
        primary = (stable_hash(fileid) + band) % n_nodes
        return self._spread(primary, n_nodes)


# ---------------------------------------------------------------------------
# Storage managers
# ---------------------------------------------------------------------------

class StorageManager(ABC):
    """Block-oriented access to named relation files."""

    #: Short name used in ``create ... with storage manager "<name>"``.
    name: str = "abstract"

    def __init__(self, model: DeviceModel, clock: SimClock):
        self.model = model
        self.clock = clock
        self.port = DevicePort(model, clock)
        #: Stable identity for buffer-frame and transaction-touch keys.
        #: Unique per instance and never reused (unlike ``id()``), so a
        #: re-registered manager can never alias a predecessor's frames.
        #: The switch re-stamps it with the registration name on
        #: construction.
        self.smgr_id = f"{type(self).name}#{next(_SMGR_SEQ)}"

    # -- file lifecycle ----------------------------------------------------

    @abstractmethod
    def create(self, fileid: str) -> None:
        """Create an empty relation file.  Idempotent."""

    @abstractmethod
    def exists(self, fileid: str) -> bool:
        """Whether the relation file exists."""

    @abstractmethod
    def unlink(self, fileid: str) -> None:
        """Remove the relation file and its blocks."""

    @abstractmethod
    def nblocks(self, fileid: str) -> int:
        """Number of blocks currently in the file."""

    # -- block I/O -----------------------------------------------------------

    @abstractmethod
    def read_block(self, fileid: str, blockno: int) -> bytearray:
        """Read block *blockno*; always returns ``PAGE_SIZE`` bytes."""

    @abstractmethod
    def write_block(self, fileid: str, blockno: int, data: bytes) -> None:
        """Write block *blockno* (must already exist or be the next block)."""

    def extend(self, fileid: str, data: bytes) -> int:
        """Append a new block and return its block number."""
        blockno = self.nblocks(fileid)
        self.write_block(fileid, blockno, data)
        return blockno

    @abstractmethod
    def sync(self, fileid: str) -> None:
        """Force the file's blocks to stable storage."""

    # -- placement ----------------------------------------------------------

    def placement_groups(self, fileid: str,
                         blocknos: list[int]) -> list[list[int]]:
        """Partition *blocknos* into per-device batches, each in block
        order.

        Batched callers (commit-time flush, prefetch) issue each returned
        group contiguously so that every physical device sees its blocks
        sequentially.  The default — one group, sorted — is exactly the
        historical single-device order; multi-node managers override it to
        group by primary node.
        """
        return [sorted(blocknos)] if blocknos else []

    # -- helpers -------------------------------------------------------------

    def _check_block(self, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise StorageManagerError(
                f"block must be {PAGE_SIZE} bytes, got {len(data)}")

    def byte_size(self, fileid: str) -> int:
        """Total bytes occupied by the relation file."""
        return self.nblocks(fileid) * PAGE_SIZE

    def stats(self) -> dict:
        """Physical access counters (reads, writes, seeks, ...)."""
        return self.port.stats()


class NodeAddressedManager(StorageManager):
    """A storage manager routing block I/O through placed storage nodes.

    The single-node managers (``disk``, ``memory``) use this directly with
    one node whose port *is* the manager's port, preserving the historical
    cost accounting exactly; :class:`repro.smgr.sharded` overrides the
    block I/O for quorum replication.
    """

    def __init__(self, model: DeviceModel, clock: SimClock,
                 nodes: list[StorageNode] | None = None,
                 placement: PlacementPolicy | None = None):
        super().__init__(model, clock)
        self.nodes: list[StorageNode] = list(nodes or [])
        self.placement = placement or SingleNodePlacement()

    def node_replicas(self, fileid: str, blockno: int) -> tuple[int, ...]:
        """Indices into :attr:`nodes` holding this block, primary first."""
        return self.placement.replicas(fileid, blockno, len(self.nodes))

    # -- file lifecycle (every node's store knows every file) ---------------

    def create(self, fileid: str) -> None:
        for node in self.nodes:
            node.store.create(fileid)

    def exists(self, fileid: str) -> bool:
        return any(node.store.exists(fileid) for node in self.nodes)

    def unlink(self, fileid: str) -> None:
        for node in self.nodes:
            node.store.unlink(fileid)

    def nblocks(self, fileid: str) -> int:
        best = None
        for node in self.nodes:
            if node.store.exists(fileid):
                size = node.store.nblocks(fileid)
                best = size if best is None else max(best, size)
        if best is None:
            raise StorageManagerError(
                f"relation file {fileid!r} does not exist")
        return best

    # -- block I/O ----------------------------------------------------------

    def read_block(self, fileid: str, blockno: int) -> bytearray:
        total = self.nblocks(fileid)
        if blockno < 0 or blockno >= total:
            raise StorageManagerError(
                f"read past end of {fileid!r}: block {blockno} of {total}")
        replicas = self.node_replicas(fileid, blockno)
        return self.nodes[replicas[0]].read(fileid, blockno)

    def write_block(self, fileid: str, blockno: int, data: bytes) -> None:
        self._check_block(data)
        current = self.nblocks(fileid)
        if blockno < 0 or blockno > current:
            raise StorageManagerError(
                f"write would leave a hole in {fileid!r}: block {blockno} "
                f"of {current}")
        for idx in self.node_replicas(fileid, blockno):
            self.nodes[idx].write(fileid, blockno, data)

    def sync(self, fileid: str) -> None:
        for node in self.nodes:
            node.store.sync(fileid)

    def close(self) -> None:
        for node in self.nodes:
            node.store.close()


class StorageManagerSwitch:
    """Registry mapping manager names to live manager instances.

    The switch owns the instances so that every relation routed to, say,
    ``"worm"`` shares one device (and therefore one head position and one
    cache), just as in POSTGRES.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], StorageManager]] = {}
        self._instances: dict[str, StorageManager] = {}

    def register(self, name: str,
                 factory: Callable[[], StorageManager]) -> None:
        """Register (or replace) the manager construction routine *name*."""
        self._factories[name] = factory
        self._instances.pop(name, None)

    def get(self, name: str) -> StorageManager:
        """The live manager instance for *name* (constructed on first use)."""
        if name not in self._instances:
            if name not in self._factories:
                raise StorageManagerError(
                    f"no storage manager registered under {name!r} "
                    f"(have: {sorted(self._factories)})")
            instance = self._factories[name]()
            # Fresh, never-reused identity per construction: frames keyed
            # by a replaced instance can never be served to its successor.
            instance.smgr_id = f"{name}#{next(_SMGR_SEQ)}"
            self._instances[name] = instance
        return self._instances[name]

    def names(self) -> list[str]:
        """Registered manager names, sorted."""
        return sorted(self._factories)

    def instances(self) -> Iterator[StorageManager]:
        """All managers constructed so far."""
        return iter(self._instances.values())

    def items(self) -> Iterator[tuple[str, StorageManager]]:
        """(registration name, instance) for managers constructed so far."""
        return iter(self._instances.items())
