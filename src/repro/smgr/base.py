"""Storage-manager abstraction and the table-driven switch.

A storage manager exposes block-oriented access to named relation files.
Blocks are exactly :data:`~repro.storage.constants.PAGE_SIZE` bytes.  The
abstraction is deliberately small — the paper calls it "a clean table-driven
interface … any user can define a new storage manager by writing and
registering a small set of interface routines."

All managers charge their physical accesses to a shared
:class:`~repro.sim.clock.SimClock` through a
:class:`~repro.sim.devices.DevicePort`, so benchmark elapsed times reflect
each device's cost model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterator

from repro.errors import StorageManagerError
from repro.sim.clock import SimClock
from repro.sim.devices import DeviceModel, DevicePort
from repro.storage.constants import PAGE_SIZE


class StorageManager(ABC):
    """Block-oriented access to named relation files on one device."""

    #: Short name used in ``create ... with storage manager "<name>"``.
    name: str = "abstract"

    def __init__(self, model: DeviceModel, clock: SimClock):
        self.model = model
        self.clock = clock
        self.port = DevicePort(model, clock)

    # -- file lifecycle ----------------------------------------------------

    @abstractmethod
    def create(self, fileid: str) -> None:
        """Create an empty relation file.  Idempotent."""

    @abstractmethod
    def exists(self, fileid: str) -> bool:
        """Whether the relation file exists."""

    @abstractmethod
    def unlink(self, fileid: str) -> None:
        """Remove the relation file and its blocks."""

    @abstractmethod
    def nblocks(self, fileid: str) -> int:
        """Number of blocks currently in the file."""

    # -- block I/O -----------------------------------------------------------

    @abstractmethod
    def read_block(self, fileid: str, blockno: int) -> bytearray:
        """Read block *blockno*; always returns ``PAGE_SIZE`` bytes."""

    @abstractmethod
    def write_block(self, fileid: str, blockno: int, data: bytes) -> None:
        """Write block *blockno* (must already exist or be the next block)."""

    def extend(self, fileid: str, data: bytes) -> int:
        """Append a new block and return its block number."""
        blockno = self.nblocks(fileid)
        self.write_block(fileid, blockno, data)
        return blockno

    @abstractmethod
    def sync(self, fileid: str) -> None:
        """Force the file's blocks to stable storage."""

    # -- helpers -------------------------------------------------------------

    def _check_block(self, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise StorageManagerError(
                f"block must be {PAGE_SIZE} bytes, got {len(data)}")

    def byte_size(self, fileid: str) -> int:
        """Total bytes occupied by the relation file."""
        return self.nblocks(fileid) * PAGE_SIZE

    def stats(self) -> dict[str, int]:
        """Physical access counters (reads, writes, seeks, ...)."""
        return self.port.stats()


class StorageManagerSwitch:
    """Registry mapping manager names to live manager instances.

    The switch owns the instances so that every relation routed to, say,
    ``"worm"`` shares one device (and therefore one head position and one
    cache), just as in POSTGRES.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], StorageManager]] = {}
        self._instances: dict[str, StorageManager] = {}

    def register(self, name: str,
                 factory: Callable[[], StorageManager]) -> None:
        """Register (or replace) the manager construction routine *name*."""
        self._factories[name] = factory
        self._instances.pop(name, None)

    def get(self, name: str) -> StorageManager:
        """The live manager instance for *name* (constructed on first use)."""
        if name not in self._instances:
            if name not in self._factories:
                raise StorageManagerError(
                    f"no storage manager registered under {name!r} "
                    f"(have: {sorted(self._factories)})")
            self._instances[name] = self._factories[name]()
        return self._instances[name]

    def names(self) -> list[str]:
        """Registered manager names, sorted."""
        return sorted(self._factories)

    def instances(self) -> Iterator[StorageManager]:
        """All managers constructed so far."""
        return iter(self._instances.values())

    def items(self) -> Iterator[tuple[str, StorageManager]]:
        """(registration name, instance) for managers constructed so far."""
        return iter(self._instances.items())
