"""The Figure 3 baseline: a special program on the raw WORM device.

§9.3: "Because there is no file system for the WORM, we have used in its
place a special purpose program which reads and writes the raw device.
This program provides an upper bound on how well an operating system WORM
jukebox file system could expect to do.  Also, this special program cannot
update frames, so we have restricted our attention to the read portion of
the benchmark."

:class:`RawWormDevice` is that program's device access: append-only writes,
byte-addressed reads, no cache, no atomicity, no recoverability — and
therefore no overhead either.
"""

from __future__ import annotations

from repro.errors import ReadOnlyObject, StorageManagerError
from repro.sim.clock import SimClock
from repro.sim.devices import DeviceModel, DevicePort, jukebox_device


class RawWormDevice:
    """Byte-addressed, append-only access to raw jukebox media."""

    def __init__(self, clock: SimClock, model: DeviceModel | None = None):
        self.model = model or jukebox_device()
        self.port = DevicePort(self.model, clock)
        self._data = bytearray()
        self._sealed = False

    @property
    def size(self) -> int:
        """Bytes written to the media so far."""
        return len(self._data)

    def append(self, data: bytes) -> int:
        """Append *data* to the media; returns the starting byte offset."""
        if self._sealed:
            raise ReadOnlyObject("raw WORM media has been sealed")
        offset = len(self._data)
        self._data.extend(data)
        self.port.charge_write("raw-worm", offset, len(data))
        return offset

    def seal(self) -> None:
        """Finalize the media; further appends are rejected."""
        self._sealed = True

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read *nbytes* starting at *offset*."""
        if offset < 0 or offset + nbytes > len(self._data):
            raise StorageManagerError(
                f"raw read [{offset}, {offset + nbytes}) outside media "
                f"of {len(self._data)} bytes")
        self.port.charge_read("raw-worm", offset, nbytes)
        return bytes(self._data[offset:offset + nbytes])
