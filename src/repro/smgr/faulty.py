"""Fault-injecting storage manager: any manager, made unreliable on cue.

:class:`FaultInjector` wraps another :class:`StorageManager` and consults a
:class:`~repro.sim.faults.FaultPlan` before every block read, block write,
and sync.  A firing rule either raises a device error (the process
survives; commit aborts), tears the write — persisting only a scripted
prefix of the page through to the wrapped manager — or raises
:class:`~repro.errors.SimulatedCrash`.

Because the injector is itself an ordinary storage manager it registers in
the switch like any other (``Database`` registers it as ``"faulty"``,
wrapping the durable ``"disk"`` manager by default — or the replicated
``"sharded"`` one via ``Database(faulty_base="sharded")``, which is how
the crash matrix covers node loss), so any relation — including every
large-object class — can be routed through it with
``create ... with storage manager "faulty"``, and a reopened database finds
the same files through a fresh, unarmed injector.  With no plan armed the
wrapper is transparent.

Every delegated operation is appended to :attr:`FaultInjector.trace`, which
doubles as a cheap protocol checker: the force-at-commit tests assert that
a ``sync`` for each touched file appears after its writes.
"""

from __future__ import annotations

from repro.sim.clock import SimClock  # noqa: F401  (re-export convenience)
from repro.sim.faults import FaultPlan
from repro.smgr.base import StorageManager
from repro.storage.constants import PAGE_SIZE


class FaultInjector(StorageManager):
    """A storage manager that fails, tears, or "crashes" on a scripted cue."""

    name = "faulty"

    def __init__(self, base: StorageManager, plan: FaultPlan | None = None):
        super().__init__(base.model, base.clock)
        self.base = base
        self.plan = plan
        #: Every (operation, fileid) delegated through this wrapper.
        self.trace: list[tuple[str, str]] = []

    # -- arming ------------------------------------------------------------

    def arm(self, plan: FaultPlan) -> FaultPlan:
        """Install *plan*; subsequent guarded operations consult it.

        ``node`` rules are forwarded to the wrapped manager when it is
        node-addressed (a sharded base), so one plan can script both
        block-level faults and node-health transitions.
        """
        self.plan = plan
        if plan.has_node_rules():
            set_node_plan = getattr(self.base, "set_node_plan", None)
            if set_node_plan is not None:
                set_node_plan(plan)
        return plan

    def disarm(self) -> None:
        """Remove the plan; the wrapper becomes transparent again."""
        self.plan = None
        clear_node_plan = getattr(self.base, "clear_node_plan", None)
        if clear_node_plan is not None:
            clear_node_plan()

    def _check(self, op: str, fileid: str):
        self.trace.append((op, fileid))
        if self.plan is None:
            return None
        return self.plan.check(op, fileid)

    def op_count(self, op: str, fileid: str | None = None) -> int:
        """How many *op* calls (optionally on *fileid*) went through."""
        return sum(1 for seen_op, seen_file in self.trace
                   if seen_op == op
                   and (fileid is None or seen_file == fileid))

    # -- file lifecycle (delegated, never failed: DDL is journal-backed
    # and outside the commit path the harness targets) ---------------------

    def create(self, fileid: str) -> None:
        self.trace.append(("create", fileid))
        self.base.create(fileid)

    def exists(self, fileid: str) -> bool:
        return self.base.exists(fileid)

    def unlink(self, fileid: str) -> None:
        self.trace.append(("unlink", fileid))
        self.base.unlink(fileid)

    def nblocks(self, fileid: str) -> int:
        return self.base.nblocks(fileid)

    def placement_groups(self, fileid: str,
                         blocknos: list[int]) -> list[list[int]]:
        return self.base.placement_groups(fileid, blocknos)

    @property
    def nodes(self):
        """The wrapped manager's storage nodes (empty for flat bases)."""
        return getattr(self.base, "nodes", [])

    # -- block I/O ---------------------------------------------------------

    def read_block(self, fileid: str, blockno: int) -> bytearray:
        rule = self._check("read", fileid)
        if rule is not None:
            self.plan.fire(rule, f"read {fileid!r} block {blockno}")
        return self.base.read_block(fileid, blockno)

    def write_block(self, fileid: str, blockno: int, data: bytes) -> None:
        rule = self._check("write", fileid)
        if rule is None:
            self.base.write_block(fileid, blockno, data)
            return
        if rule.action == "torn":
            self.base.write_block(
                fileid, blockno,
                self._torn_image(fileid, blockno, data, rule.keep_bytes))
        self.plan.fire(rule, f"write {fileid!r} block {blockno}")

    def _torn_image(self, fileid: str, blockno: int, data: bytes,
                    keep: int) -> bytes:
        """What stable storage holds after a write persisted *keep* bytes:
        the new prefix, then whatever the block held before (zeros for a
        fresh block)."""
        prefix = bytes(data)[:keep]
        if 0 <= blockno < self.base.nblocks(fileid):
            old = bytes(self.base.read_block(fileid, blockno))
            return prefix + old[keep:]
        return prefix + bytes(PAGE_SIZE - keep)

    def sync(self, fileid: str) -> None:
        rule = self._check("sync", fileid)
        if rule is not None:
            self.plan.fire(rule, f"sync {fileid!r}")
        self.base.sync(fileid)

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict[str, int]:
        stats = dict(self.base.stats())
        stats["injected_faults"] = len(self.plan.fired) if self.plan else 0
        return stats

    def close(self) -> None:
        close = getattr(self.base, "close", None)
        if close is not None:
            close()
