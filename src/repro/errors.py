"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Subsystems raise the most specific
subclass that applies; error messages always name the object involved
(relation, large object OID, page number, ...) so failures are diagnosable
without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StorageError(ReproError):
    """Base class for storage-manager and page-level failures."""


class PageError(StorageError):
    """A slotted-page operation failed (bad slot, overflow, corruption)."""


class PageFullError(PageError):
    """There is not enough free space on a page for the requested item."""


class ChecksumError(StorageError):
    """A page read back from a device failed checksum verification."""


class StorageManagerError(StorageError):
    """A storage manager could not satisfy a block request."""


class SimulatedCrash(StorageError):
    """A scripted fault-injection plan reached a crash point.

    Raised by the crash-recovery harness (:mod:`repro.sim.faults`) to model
    the process dying mid-operation: whatever had reached stable storage is
    all a reopened database gets to see.  Recovery code must never catch
    this to "clean up" — a dead process runs no cleanup — so the
    transaction manager re-raises it untouched instead of aborting.
    """


class WriteOnceViolation(StorageManagerError):
    """An attempt was made to overwrite an already-written WORM block."""


class NodeDownError(StorageManagerError):
    """A storage node addressed by a block operation is marked down.

    Replicated managers catch this per replica and keep going as long as
    a quorum survives; single-node managers surface it like any other
    device error.
    """


class BufferError_(StorageError):
    """The buffer manager could not satisfy a request (pool exhausted...)."""


class RelationError(ReproError):
    """A heap/index relation operation failed."""


class RelationNotFound(RelationError):
    """The named relation does not exist in the catalog."""


class DuplicateRelation(RelationError):
    """A relation with the given name already exists."""


class TupleNotFound(RelationError):
    """The TID does not name a live tuple."""


class SchemaError(RelationError):
    """A tuple did not match its relation's schema."""


class TransactionError(ReproError):
    """Base class for transaction-manager failures."""


class NoActiveTransaction(TransactionError):
    """An operation that requires a transaction ran outside of one."""


class TransactionAborted(TransactionError):
    """The current transaction has been aborted and must be rolled back."""


class LockError(TransactionError):
    """A lock could not be acquired."""


class LockTimeout(LockError):
    """A blocking lock request waited longer than its timeout."""


class DeadlockError(LockError):
    """The transaction was chosen as the victim of a wait-for cycle.

    The holder of the exception **must abort** the transaction: the victim
    still holds the locks that close the cycle, and only
    :meth:`~repro.txn.manager.TransactionManager.abort` (which calls
    ``release_all``) lets the surviving transactions proceed.
    """


class LockOrderError(LockError):
    """The lockdep runtime validator observed a hierarchy violation.

    Raised *before* the offending acquisition blocks, so the caller's
    stack still shows exactly where the out-of-order acquire happened.
    The message carries both sides: the stack that took the already-held
    lock and the stack attempting the new one (see
    ``repro/txn/lockdep.py`` and docs/invariants.md, "Lock hierarchy").
    """


class TypeError_(ReproError):
    """Base class for ADT-system failures."""


class UnknownType(TypeError_):
    """The named type is not registered."""


class UnknownFunction(TypeError_):
    """The named function/operator is not registered for these arg types."""


class CastError(TypeError_):
    """A value could not be converted to the requested type."""


class LargeObjectError(ReproError):
    """Base class for large-object failures."""


class LargeObjectNotFound(LargeObjectError):
    """The large object OID/designator does not exist."""


class InvalidSeek(LargeObjectError):
    """A seek addressed a negative offset or used a bad whence."""


class ObjectClosedError(LargeObjectError):
    """I/O was attempted on a closed large-object descriptor."""


class ReadOnlyObject(LargeObjectError):
    """A write was attempted on an object opened read-only (or WORM data)."""


class CompressionError(ReproError):
    """A compressor failed to round-trip data."""


class InversionError(ReproError):
    """Base class for Inversion file-system failures."""


class FileNotFound(InversionError):
    """The Inversion path does not exist."""


class FileExists(InversionError):
    """The Inversion path already exists."""


class NotADirectory(InversionError):
    """A path component that must be a directory is a plain file."""


class DirectoryNotEmpty(InversionError):
    """rmdir was called on a non-empty directory."""


class DirectoryLoop(InversionError):
    """rename would move a directory into its own subtree.

    Committing such a rename detaches the subtree from the root — the
    directory becomes its own ancestor and nothing under it is reachable
    any more (POSIX rename reports ``EINVAL`` for the same request).
    """


class QueryError(ReproError):
    """Base class for query-language failures."""


class ParseError(QueryError):
    """The query text could not be parsed."""

    def __init__(self, message: str, line: int = 1, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ExecutionError(QueryError):
    """The query failed during execution."""
