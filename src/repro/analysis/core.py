"""Driver for the invariant linter: modules, rules, suppressions.

A :class:`ModuleInfo` is one parsed source file plus everything a rule
needs to judge it: the AST (with parent links), the module path
*relative to the package root* (so location-scoped rules like "only
``smgr/`` may open files" work no matter where the tree is checked
out), and the per-line suppression table parsed from
``# repro: allow(<rule>[, <rule>...])`` comments.

Rules are small classes registered with :func:`register`; the driver
instantiates each once and feeds it every module.  A rule yields
:class:`Finding` objects; the driver drops findings whose line carries
a matching suppression and returns the rest in a :class:`Report`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Matches ``repro: allow(R001)`` / ``repro: allow(R001, R004): reason``
#: comments (written with a leading ``#`` in source).
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_,\s]+?)\s*\)")

#: Rule id for files the parser rejects (mirrors ruff's E999).
SYNTAX_ERROR_RULE = "E999"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str      #: path as given on the command line / to the driver
    rel: str       #: module path relative to the package root
    line: int
    col: int
    message: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


class Rule:
    """Base class for one invariant check.

    Subclasses set ``id`` / ``name`` / ``summary`` and implement
    :meth:`check`, yielding findings (suppressions are the driver's
    job, not the rule's).  Use :meth:`finding` to build them so the
    location bookkeeping stays in one place.
    """

    id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover

    def finding(self, module: "ModuleInfo", node: ast.AST,
                message: str) -> Finding:
        return Finding(rule=self.id, path=module.display_path,
                       rel=module.rel, line=node.lineno,
                       col=node.col_offset, message=message)


class ProjectRule(Rule):
    """A rule that judges the *whole* analyzed tree at once.

    Per-module rules cannot see lock acquisitions reached through a
    call in another file; interprocedural checks (R008/R009) subclass
    this instead and implement :meth:`check_project` over every parsed
    module.  The driver applies suppressions per finding exactly as for
    module rules (a finding lands on a concrete line in a concrete
    module).
    """

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        return iter(())

    def check_project(self,
                      modules: list["ModuleInfo"]) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


#: Registry of rule instances by id, populated by :func:`register`.
_RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a :class:`Rule`."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    _RULES[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in id order."""
    return [_RULES[key] for key in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES)) or "none registered"
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from None


class ModuleInfo:
    """One parsed module plus the context rules need to judge it."""

    def __init__(self, path: Path, source: str,
                 display_path: str | None = None):
        self.path = path
        self.display_path = display_path or str(path)
        self.source = source
        self.lines = source.splitlines()
        self.rel = _package_relative(path)
        self.tree = ast.parse(source, filename=str(path))
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                child._repro_parent = parent  # type: ignore[attr-defined]
        self._suppressions = _parse_suppressions(
            self.lines, _docstring_lines(self.tree))

    # -- location helpers ----------------------------------------------------------

    def in_package(self, *prefixes: str) -> bool:
        """Whether this module lives under any of the given rel prefixes.

        A prefix ending in ``/`` matches a package directory; otherwise
        it must equal the module path exactly (``"smgr/"`` vs
        ``"lo/ufile.py"``).
        """
        for prefix in prefixes:
            if prefix.endswith("/"):
                if self.rel.startswith(prefix):
                    return True
            elif self.rel == prefix:
                return True
        return False

    def parent(self, node: ast.AST) -> ast.AST | None:
        return getattr(node, "_repro_parent", None)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """The innermost function definition lexically containing *node*."""
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parent(current)
        return None

    # -- suppressions --------------------------------------------------------------

    def suppressed(self, line: int, rule_id: str) -> bool:
        return rule_id in self._suppressions.get(line, set())

    @property
    def suppression_lines(self) -> dict[int, set[str]]:
        return self._suppressions


def _package_relative(path: Path) -> str:
    """Module path relative to the ``repro`` package root.

    ``src/repro/txn/locks.py`` → ``txn/locks.py``.  Fixture trees used
    by the test suite place files under a directory literally named
    ``repro`` to exercise location-scoped rules; files outside any
    ``repro`` directory fall back to their bare filename.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i < len(parts) - 1:
            return "/".join(parts[i + 1:])
    return path.name


def _docstring_lines(tree: ast.AST) -> set[int]:
    """Line numbers covered by docstring-position string literals.

    The rule catalogue documents the suppression syntax *inside*
    docstrings; those examples are prose, not suppressions, and must
    not be parsed as (inevitably unused) allow-comments.
    """
    covered: set[int] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            end = node.value.end_lineno or node.value.lineno
            covered.update(range(node.value.lineno, end + 1))
    return covered


def _parse_suppressions(lines: list[str],
                        skip: set[int] | None = None
                        ) -> dict[int, set[str]]:
    """Map line number → rule ids allowed there.

    A suppression comment on a code line covers that line.  A comment
    on a line of its own covers the next non-blank, non-comment line
    (so long justifications can sit above the statement they excuse).
    Lines in *skip* (docstrings) are never suppressions.
    """
    table: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if skip and lineno in skip:
            continue
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        stripped = text.strip()
        target = lineno
        if stripped.startswith("#"):
            for later in range(lineno + 1, len(lines) + 1):
                later_text = lines[later - 1].strip()
                if later_text and not later_text.startswith("#"):
                    target = later
                    break
        table.setdefault(target, set()).update(rules)
    return table


# -- driver -------------------------------------------------------------------------


@dataclass(frozen=True)
class UnusedSuppression:
    """A ``# repro: allow(...)`` that suppressed nothing this run.

    Only suppressions naming a rule that was actually *selected* are
    judged: running ``--select R001`` must not flag every R004
    suppression in the tree as stale.
    """

    path: str
    line: int
    rule: str

    def as_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "rule": self.rule}

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule)


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    unused_suppressions: list[UnusedSuppression] = field(
        default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [f.as_dict() for f in self.findings],
            "count": len(self.findings),
            "unused_suppressions": [
                u.as_dict() for u in self.unused_suppressions],
        }


def _load_module(path: Path, display: str,
                 report: Report) -> ModuleInfo | None:
    """Parse one file into a ModuleInfo, or record an E999 finding."""
    try:
        source = path.read_text(encoding="utf-8")
        return ModuleInfo(path, source, display_path=display)
    except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = (getattr(exc, "offset", None) or 1) - 1
        report.findings.append(Finding(
            rule=SYNTAX_ERROR_RULE, path=display, rel=path.name,
            line=line, col=max(col, 0),
            message=f"cannot parse file: {getattr(exc, 'msg', exc)}"))
        return None


def _run(files: list[tuple[Path, str]],
         chosen: list[Rule]) -> Report:
    """The driver: parse every file, run module then project rules,
    apply suppressions, and report the selected-but-unused ones."""
    module_rules = [r for r in chosen if not isinstance(r, ProjectRule)]
    project_rules = [r for r in chosen if isinstance(r, ProjectRule)]
    selected_ids = {r.id for r in chosen}
    report = Report()
    modules: list[ModuleInfo] = []
    by_display: dict[str, ModuleInfo] = {}
    used: dict[int, set[tuple[int, str]]] = {}

    def apply(module: ModuleInfo, found: Finding) -> None:
        if module.suppressed(found.line, found.rule):
            report.suppressed += 1
            used[id(module)].add((found.line, found.rule))
        else:
            report.findings.append(found)

    for path, display in files:
        report.files_checked += 1
        module = _load_module(path, display, report)
        if module is None:
            continue
        modules.append(module)
        by_display[module.display_path] = module
        used[id(module)] = set()
        for rule in module_rules:
            for found in rule.check(module):
                apply(module, found)
    for rule in project_rules:
        for found in rule.check_project(modules):
            module = by_display.get(found.path)
            if module is not None:
                apply(module, found)
            else:  # pragma: no cover - rule reported a foreign path
                report.findings.append(found)
    for module in modules:
        module_used = used[id(module)]
        for line, rule_ids in module.suppression_lines.items():
            for rule_id in rule_ids:
                if (rule_id in selected_ids
                        and (line, rule_id) not in module_used):
                    report.unused_suppressions.append(UnusedSuppression(
                        path=module.display_path, line=line,
                        rule=rule_id))
    report.findings.sort(key=Finding.sort_key)
    report.unused_suppressions.sort(key=UnusedSuppression.sort_key)
    return report


def analyze_file(path: Path, rules: Iterable[Rule] | None = None,
                 display_path: str | None = None) -> Report:
    """Run *rules* (default: all registered) over one source file."""
    chosen = list(rules) if rules is not None else all_rules()
    return _run([(path, display_path or str(path))], chosen)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for path in paths:
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py")
                if "__pycache__" not in p.parts)
        else:
            yield path


def analyze_paths(paths: Iterable[Path | str],
                  rules: Iterable[Rule] | None = None) -> Report:
    """Run the linter over files and/or directory trees."""
    chosen = list(rules) if rules is not None else all_rules()
    files = [(p, str(p)) for p in iter_python_files(Path(p) for p in paths)]
    return _run(files, chosen)
