"""Invariant linter: AST-based static checks for the engine's discipline.

The concurrency and recovery work (PRs 2–4) made the engine safe by
*convention*: heavyweight locks before the engine latch, raw heap/index
access only inside the scan layer, block I/O only through the storage
manager switch, wall-clock time only from the simulated clock.  Until
now those conventions were enforced by a runtime tripwire
(``REPRO_DEBUG_LATCH=1``) that fires only on paths a test happens to
execute.  This package enforces them *statically*, on every path, as
part of CI.

Usage::

    python -m repro.analysis [--format json] [paths...]
    repro-lint src/repro

Each finding carries a rule id (``R001``..).  Intentional exceptions are
annotated in source with a suppression comment on (or directly above)
the offending line::

    handle = open(self.path, "ab")  # repro: allow(R003): own fsync discipline

The catalogue of rules, the invariant each encodes, and the reasoning
behind them live in ``docs/invariants.md`` (and DESIGN.md §5c for the
locking discipline itself).
"""

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    Report,
    Rule,
    all_rules,
    analyze_file,
    analyze_paths,
    get_rule,
    register,
)
from repro.analysis.report import render_json, render_text

# Importing the rules modules populates the registry.
import repro.analysis.rules  # noqa: F401  (registration side effect)
import repro.analysis.lockdep  # noqa: F401  (R008/R009 registration)

__all__ = [
    "Finding",
    "ModuleInfo",
    "Report",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "get_rule",
    "register",
    "render_json",
    "render_text",
]
