"""Interprocedural lock-order analysis: rules R008 and R009.

The per-module rules (R001–R007) judge one file at a time; a lock
hierarchy cannot be checked that way, because the function that takes
the mutex and the function that blocks under it are usually in
different files.  This pass builds a lightweight whole-program view of
``src/repro``:

1. **Extraction** — every function body becomes an ordered event tree:
   heavyweight ``LockManager.acquire`` calls (tagged with the lock
   class of their resource expression), ``with`` blocks over classified
   scoped locks, branches, and outgoing calls.  Scoped ``with``
   expressions are classified by the per-module *mutex map* read from
   ``self.attr = LockdepMutex("<class>")`` / ``EngineLatch()``
   assignments — the constructor literal is the declaration — with a
   name heuristic (``...latch``) for the engine latch reached through
   properties.

2. **Call resolution** — lexical, no type inference: ``self.f`` binds
   to the enclosing class; bare names bind to same-module functions or
   class constructors; other receivers are matched through
   :data:`RECEIVER_HINTS` (the repo's naming idiom: ``db`` is always
   the Database, ``bufmgr`` the buffer pool, ...).  Unknown receivers
   bind within the defining module only — a global name match would
   conflate ``connections.append`` with ``VSegmentObject.append`` and
   drown the report in phantom chains.

3. **Summaries** — for each function, the transitive ordered list of
   heavy acquisitions and the transitive set of scoped acquisitions,
   memoized, cycle-cut, and capped.

4. **Checks** — walking each body with its lexical held-set:

   * **R008 (lock-order-inversion)**: a scoped lock acquired (directly
     or through calls) while a *higher-ranked* scoped lock is held,
     per the declared table in ``repro/txn/lockdep.py``; plus the
     ``inv_*`` heavyweight family acquired out of protocol order
     inside a ``with VALIDATOR.operation(...)`` block (branches are
     walked independently — only straight-line order counts; order is
     *not* checked across operation boundaries, because strict 2PL
     makes cross-operation edges legitimately inverted, exactly
     matching the runtime validator's semantics).
   * **R009 (blocking-under-mutex)**: a heavyweight ``acquire``
     reachable while any scoped lock is held.  A heavy-lock wait can
     park the thread until another transaction commits; under the
     latch or a mutex that is a convoy or a deadlock.

Findings land on the acquisition site (the innermost callee), with the
establishing call chain in the message, so a suppression sits next to
the code that actually takes the lock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, ProjectRule, register
from repro.analysis.rules import dotted
from repro.txn.lockdep import HIERARCHY, INV_FAMILY

#: Receivers whose attribute calls resolve to LockManager.acquire.
_HEAVY_OWNERS = {"locks", "lock_manager", "lock_mgr"}

#: Receiver-name idioms -> substrings of the classes they denote.  A
#: call ``recv.method(...)`` resolves to methods of matching classes
#: only; receivers not listed resolve within their own module.
RECEIVER_HINTS: dict[str, tuple[str, ...]] = {
    "db": ("Database",),
    "database": ("Database",),
    "locks": ("LockManager",),
    "lock_manager": ("LockManager",),
    "lock_mgr": ("LockManager",),
    "relation": ("HeapRelation",),
    "rel": ("HeapRelation",),
    "heap": ("HeapRelation",),
    "archive": ("HeapRelation",),
    "index": ("BTree",),
    "btree": ("BTree",),
    "bufmgr": ("BufferManager",),
    "clog": ("CommitLog",),
    "tm": ("TransactionManager",),
    "clock": ("SimClock",),
    "catalog": ("Catalog",),
    "lo": ("LargeObjectManager",),
    "inversion": ("InversionFileSystem",),
    "fs": ("InversionFileSystem", "NativeFileSystem"),
    "session": ("Session",),
    "server": ("ReproServer",),
    "latch": ("EngineLatch",),
    "smgr": ("StorageManager", "BlockStore"),
    "switch": ("StorageManagerSwitch",),
    "journal": ("CatalogJournal",),
    "protocol": ("protocol",),
}

#: Caps keeping the fixpoint cheap and the output readable.
_SUMMARY_CAP = 48
_CHAIN_CAP = 10


# -- event extraction ---------------------------------------------------------------

# Events:
#   ("heavy", lock_class, node)
#   ("with", lock_class, node, [children])
#   ("opscope", node, [children])               (VALIDATOR.operation)
#   ("call", receiver or None, name, node)
#   ("branch", [ [events], [events], ... ])     (If / Try arms)


def _chain_parts(node: ast.AST) -> list[str] | None:
    path = dotted(node)
    return path.split(".") if path else None


def _classify_resource_expr(node: ast.AST) -> str:
    """Lock class of a LockManager resource expression, lexically."""
    if isinstance(node, ast.Tuple) and node.elts:
        first = node.elts[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            name = f"lock:{first.value}"
            if name in HIERARCHY:
                return name
    if isinstance(node, ast.Call):
        parts = _chain_parts(node.func)
        callee = parts[-1] if parts else ""
        if callee in ("lo_range", "lo_whole"):
            return "lock:largeobject"
        if callee == "RangeResource":
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                name = f"lock:{node.args[0].value}"
                if name in HIERARCHY:
                    return name
            return "lock:largeobject"
    return "lock:other"


def _heavy_class(call: ast.Call) -> str | None:
    """If *call* is a ``LockManager.acquire``, its lock class."""
    parts = _chain_parts(call.func)
    if not parts or len(parts) < 2 or parts[-1] != "acquire":
        return None
    if parts[-2] not in _HEAVY_OWNERS:
        return None
    if len(call.args) >= 2:
        return _classify_resource_expr(call.args[1])
    return "lock:other"


def _mutex_map(tree: ast.Module) -> dict[str, str]:
    """attr/name -> scoped lock class, from constructor literals.

    ``self._mutex = LockdepMutex("mutex:xlog")`` declares ``_mutex`` as
    that class for the whole module; ``self._latch = EngineLatch()``
    declares the engine latch.  Per-module scoping is what lets two
    modules both call an attribute ``_mutex`` without confusion.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or \
                not isinstance(node.value, ast.Call):
            continue
        parts = _chain_parts(node.value.func)
        ctor = parts[-1] if parts else ""
        lock_class = None
        if ctor == "LockdepMutex":
            args = node.value.args
            if args and isinstance(args[0], ast.Constant) \
                    and isinstance(args[0].value, str):
                lock_class = args[0].value
        elif ctor == "EngineLatch":
            lock_class = "latch"
        if lock_class is None:
            continue
        for target in node.targets:
            name = target.attr if isinstance(target, ast.Attribute) \
                else (target.id if isinstance(target, ast.Name) else None)
            if name:
                table[name] = lock_class
    return table


def _classify_with_expr(expr: ast.AST,
                        mutex_map: dict[str, str]) -> str | None:
    """Scoped lock class of a ``with`` context expression, or None."""
    if isinstance(expr, ast.Call):
        parts = _chain_parts(expr.func)
        ctor = parts[-1] if parts else ""
        if ctor == "LockdepMutex":
            args = expr.args
            if args and isinstance(args[0], ast.Constant) \
                    and isinstance(args[0].value, str) \
                    and args[0].value in HIERARCHY:
                return args[0].value
        if ctor == "EngineLatch":
            return "latch"
        return None
    parts = _chain_parts(expr)
    if not parts:
        return None
    leaf = parts[-1]
    if leaf in mutex_map:
        return mutex_map[leaf]
    if "latch" in leaf:
        # Engine-latch property access (db.latch, self.db.latch).  The
        # buffer pool's `_latch` attribute is *not* caught here: its
        # LockdepMutex assignment puts it in the module's mutex map.
        return "latch"
    return None


@dataclass
class FunctionEntry:
    """One function/method with its extracted event tree."""

    module: ModuleInfo
    cls: str | None
    name: str
    node: ast.AST
    events: list = field(default_factory=list)

    @property
    def qualname(self) -> str:
        where = f"{self.cls}.{self.name}" if self.cls else self.name
        return f"{self.module.rel}::{where}"


def _is_operation_scope(expr: ast.expr) -> bool:
    """``with VALIDATOR.operation(...)`` / ``lockdep.VALIDATOR.operation``.

    These scopes are where the Inversion multi-lock protocol runs, and
    therefore where R008's inv_* order check applies (mirroring the
    runtime validator, which checks the family only inside them).
    """
    if not isinstance(expr, ast.Call):
        return False
    parts = _chain_parts(expr.func)
    return (bool(parts) and parts[-1] == "operation"
            and any(p in ("VALIDATOR", "validator", "lockdep")
                    for p in parts[:-1]))


def _extract_events(body: list[ast.stmt],
                    mutex_map: dict[str, str]) -> list:
    events: list = []
    for stmt in body:
        _extract_node(stmt, mutex_map, events)
    return events


def _extract_node(node: ast.AST, mutex_map: dict[str, str],
                  events: list) -> None:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef, ast.Lambda)):
        return  # nested definitions get their own entries
    if isinstance(node, (ast.With, ast.AsyncWith)):
        wrappers = []
        opscope = False
        for item in node.items:
            # Calls inside the context expression run first (and a
            # classified expression is an acquisition, not a call).
            cls = _classify_with_expr(item.context_expr, mutex_map)
            if cls is not None:
                wrappers.append((cls, node))
            elif _is_operation_scope(item.context_expr):
                opscope = True
            else:
                _extract_node(item.context_expr, mutex_map, events)
        inner = _extract_events(node.body, mutex_map)
        if opscope:
            inner = [("opscope", node, inner)]
        for cls, at in reversed(wrappers):
            inner = [("with", cls, at, inner)]
        events.extend(inner)
        return
    if isinstance(node, ast.Call):
        heavy = _heavy_class(node)
        if heavy is not None:
            for arg in node.args:  # resource exprs may contain calls
                _extract_node(arg, mutex_map, events)
            events.append(("heavy", heavy, node))
            return
        parts = _chain_parts(node.func)
        if parts:
            # self.foo() -> receiver "self"; self.db.foo()/db.foo() ->
            # receiver "db"; foo() -> receiver None.
            receiver = parts[-2] if len(parts) >= 2 else None
            events.append(("call", receiver, parts[-1], node))
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            _extract_node(arg, mutex_map, events)
        return
    if isinstance(node, ast.If):
        arms = [_extract_events(node.body, mutex_map)]
        if node.orelse:
            arms.append(_extract_events(node.orelse, mutex_map))
        _extract_node(node.test, mutex_map, events)
        events.append(("branch", arms))
        return
    if isinstance(node, (ast.Try,)):
        arms = [_extract_events(node.body, mutex_map)]
        for handler in node.handlers:
            arms.append(_extract_events(handler.body, mutex_map))
        if node.orelse:
            arms.append(_extract_events(node.orelse, mutex_map))
        events.append(("branch", arms))
        if node.finalbody:
            events.extend(_extract_events(node.finalbody, mutex_map))
        return
    for child in ast.iter_child_nodes(node):
        _extract_node(child, mutex_map, events)


# -- the whole-program view ---------------------------------------------------------

class _Acq:
    """One (transitively reachable) acquisition, with its provenance."""

    __slots__ = ("lock_class", "entry", "node", "chain")

    def __init__(self, lock_class: str, entry: "FunctionEntry",
                 node: ast.AST, chain: tuple):
        self.lock_class = lock_class
        self.entry = entry
        self.node = node
        self.chain = chain  # qualnames, summarized function downward


class Project:
    """Extraction + call resolution + summaries over all modules."""

    def __init__(self, modules: list[ModuleInfo]):
        self.functions: list[FunctionEntry] = []
        self.by_name: dict[str, list[FunctionEntry]] = {}
        self.classes: dict[str, list[str]] = {}  # class -> module rels
        for module in modules:
            mutex_map = _mutex_map(module.tree)
            self._extract_module(module, mutex_map)
        for fn in self.functions:
            self.by_name.setdefault(fn.name, []).append(fn)
        self._heavy_memo: dict[int, list[_Acq]] = {}
        self._scoped_memo: dict[int, list[_Acq]] = {}
        self._stack: set[int] = set()

    def _extract_module(self, module: ModuleInfo,
                        mutex_map: dict[str, str]) -> None:
        def visit(node: ast.AST, cls: str | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    self.classes.setdefault(child.name, []).append(
                        module.rel)
                    visit(child, child.name)
                elif isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    entry = FunctionEntry(
                        module=module, cls=cls, name=child.name,
                        node=child,
                        events=_extract_events(child.body, mutex_map))
                    self.functions.append(entry)
                    visit(child, cls)
                else:
                    visit(child, cls)

        visit(module.tree, None)

    # -- call resolution ------------------------------------------------

    def resolve(self, caller: FunctionEntry, receiver: str | None,
                name: str) -> list[FunctionEntry]:
        """Candidate callees for ``receiver.name(...)`` in *caller*.

        Unknown receivers bind within the defining module only: a
        global name match would conflate ``connections.append`` (a
        list) with ``VSegmentObject.append`` or ``ast.walk`` with
        ``InversionFileSystem.walk`` and drown the report in phantom
        chains.  Cross-module propagation therefore flows through
        ``self``, bare names, constructors, and the idiomatic
        receivers in :data:`RECEIVER_HINTS` — which the codebase uses
        consistently for everything that actually takes locks.
        """
        candidates = self.by_name.get(name, [])
        if not candidates:
            if name in self.classes:  # constructor call
                return [fn for fn in self.by_name.get("__init__", [])
                        if fn.cls == name]
            return []
        if receiver == "self" and caller.cls is not None:
            own = [fn for fn in candidates
                   if fn.cls == caller.cls
                   and fn.module is caller.module]
            if own:
                return own
            # Possibly inherited: any class in the same module.
            return [fn for fn in candidates if fn.cls is not None
                    and fn.module is caller.module]
        if receiver is None:
            local = [fn for fn in candidates
                     if fn.cls is None and fn.module is caller.module]
            if local:
                return local
            if name in self.classes:
                return [fn for fn in self.by_name.get("__init__", [])
                        if fn.cls == name]
            return []
        hints = RECEIVER_HINTS.get(receiver)
        if hints is not None:
            return [fn for fn in candidates if fn.cls is not None
                    and any(h in fn.cls for h in hints)]
        return [fn for fn in candidates
                if fn.module is caller.module and fn.cls is not None]

    # -- transitive summaries -------------------------------------------

    def heavy_summary(self, fn: FunctionEntry) -> list[_Acq]:
        """Ordered heavy acquisitions reachable from *fn* (capped)."""
        return self._summary(fn, self._heavy_memo, want_heavy=True)

    def scoped_summary(self, fn: FunctionEntry) -> list[_Acq]:
        """Scoped acquisitions reachable from *fn* (capped)."""
        return self._summary(fn, self._scoped_memo, want_heavy=False)

    def _summary(self, fn: FunctionEntry, memo: dict,
                 want_heavy: bool) -> list[_Acq]:
        key = id(fn)
        if key in memo:
            return memo[key]
        if key in self._stack:
            return []  # recursion: cut the cycle
        self._stack.add(key)
        out: list[_Acq] = []

        def walk(events: list) -> None:
            for ev in events:
                if len(out) >= _SUMMARY_CAP:
                    return
                kind = ev[0]
                if kind == "heavy" and want_heavy:
                    out.append(_Acq(ev[1], fn, ev[2], (fn.qualname,)))
                elif kind == "with":
                    if not want_heavy:
                        out.append(_Acq(ev[1], fn, ev[2],
                                        (fn.qualname,)))
                    walk(ev[3])
                elif kind == "opscope":
                    walk(ev[2])
                elif kind == "branch":
                    for arm in ev[1]:
                        walk(arm)
                elif kind == "call":
                    for callee in self.resolve(fn, ev[1], ev[2]):
                        for acq in (self.heavy_summary(callee)
                                    if want_heavy
                                    else self.scoped_summary(callee)):
                            if len(acq.chain) >= _CHAIN_CAP:
                                continue
                            out.append(_Acq(
                                acq.lock_class, acq.entry, acq.node,
                                (fn.qualname,) + acq.chain))
                            if len(out) >= _SUMMARY_CAP:
                                return

        walk(fn.events)
        self._stack.discard(key)
        memo[key] = out
        return out


def _rank(lock_class: str) -> int:
    return HIERARCHY[lock_class].rank


def _via(chain: tuple) -> str:
    return f" via {' -> '.join(chain)}" if len(chain) > 1 else ""


# -- R008: lock-order inversion -----------------------------------------------------

@register
class LockOrderInversionRule(ProjectRule):
    id = "R008"
    name = "lock-order-inversion"
    summary = ("scoped locks must be acquired in declared-rank order, "
               "and the inv_* family in protocol order "
               "(repro/txn/lockdep.py)")

    def check_project(self,
                      modules: list[ModuleInfo]) -> Iterator[Finding]:
        project = Project(modules)
        seen: set[tuple] = set()
        for fn in project.functions:
            yield from self._scan_scoped(project, fn, fn.events, [],
                                         seen)
            yield from self._scan_inv_order(project, fn, seen)

    def _emit(self, seen: set, acq: _Acq, against: str, message: str):
        key = (acq.entry.module.display_path, acq.node.lineno,
               acq.lock_class, against)
        if key in seen:
            return None
        seen.add(key)
        return self.finding(acq.entry.module, acq.node, message)

    def _scan_scoped(self, project: Project, fn: FunctionEntry,
                     events: list, held: list, seen: set):
        """Lexical walk: check every scoped acquisition against the
        highest-ranked scoped lock currently held."""
        for ev in events:
            kind = ev[0]
            if kind == "with":
                if held:
                    worst = max(held, key=lambda h: _rank(h[0]))
                    if _rank(ev[1]) < _rank(worst[0]):
                        acq = _Acq(ev[1], fn, ev[2], (fn.qualname,))
                        found = self._emit(
                            seen, acq, worst[0],
                            f"{ev[1]} (rank {_rank(ev[1])}) acquired "
                            f"while holding {worst[0]} (rank "
                            f"{_rank(worst[0])}); the declared order "
                            f"requires {ev[1]} first")
                        if found:
                            yield found
                yield from self._scan_scoped(project, fn, ev[3],
                                             held + [(ev[1], ev[2])],
                                             seen)
            elif kind == "opscope":
                yield from self._scan_scoped(project, fn, ev[2],
                                             held, seen)
            elif kind == "branch":
                for arm in ev[1]:
                    yield from self._scan_scoped(project, fn, arm,
                                                 held, seen)
            elif kind == "call" and held:
                worst = max(held, key=lambda h: _rank(h[0]))
                for callee in project.resolve(fn, ev[1], ev[2]):
                    for acq in project.scoped_summary(callee):
                        if _rank(acq.lock_class) < _rank(worst[0]):
                            found = self._emit(
                                seen, acq, worst[0],
                                f"{acq.lock_class} (rank "
                                f"{_rank(acq.lock_class)}) acquired "
                                f"while {fn.qualname} holds "
                                f"{worst[0]} (rank {_rank(worst[0])})"
                                f"{_via((fn.qualname,) + acq.chain)}")
                            if found:
                                yield found

    def _scan_inv_order(self, project: Project, fn: FunctionEntry,
                        seen: set):
        """inv_* protocol order inside each operation scope.

        Strict 2PL makes cross-operation edges legitimately inverted
        (``stat(a)`` then ``rename(b)`` hold nothing across the
        boundary), so — exactly like the runtime validator — the family
        is checked only within ``with VALIDATOR.operation(...)``
        blocks, where the multi-lock protocol actually runs.  Within a
        scope, branch arms are walked independently from the same
        incoming watermark (exclusive arms are not a sequence) and the
        merged watermark is the maximum across arms; a nested scope
        restarts the protocol with a fresh watermark.
        """
        findings = []

        def expanded(events: list, out: list) -> None:
            for ev in events:
                kind = ev[0]
                if kind == "heavy":
                    out.append(("acq",
                                _Acq(ev[1], fn, ev[2], (fn.qualname,))))
                elif kind == "with":
                    expanded(ev[3], out)
                elif kind == "opscope":
                    scan_scope(ev[2])  # nested: fresh watermark
                elif kind == "branch":
                    arms = []
                    for arm in ev[1]:
                        sub: list = []
                        expanded(arm, sub)
                        arms.append(sub)
                    out.append(("branch", arms))
                elif kind == "call":
                    for callee in project.resolve(fn, ev[1], ev[2]):
                        for acq in project.heavy_summary(callee):
                            out.append(("acq", _Acq(
                                acq.lock_class, acq.entry, acq.node,
                                (fn.qualname,) + acq.chain)))

        def scan(seq: list, watermark: tuple) -> tuple:
            for item in seq:
                if item[0] == "branch":
                    merged = watermark
                    for arm in item[1]:
                        arm_mark = scan(arm, watermark)
                        if arm_mark[0] > merged[0]:
                            merged = arm_mark
                    watermark = merged
                    continue
                acq = item[1]
                if acq.lock_class not in INV_FAMILY:
                    continue
                rank = _rank(acq.lock_class)
                if rank < watermark[0]:
                    found = self._emit(
                        seen, acq, watermark[1],
                        f"{acq.lock_class} acquired after "
                        f"{watermark[1]} in one locking sequence; the "
                        f"Inversion protocol order is "
                        f"{' -> '.join(INV_FAMILY)}"
                        f"{_via(acq.chain)}")
                    if found:
                        findings.append(found)
                elif rank > watermark[0]:
                    watermark = (rank, acq.lock_class)
            return watermark

        def scan_scope(events: list) -> None:
            seq: list = []
            expanded(events, seq)
            scan(seq, (-1, ""))

        def find_scopes(events: list) -> None:
            for ev in events:
                kind = ev[0]
                if kind == "opscope":
                    scan_scope(ev[2])
                elif kind == "with":
                    find_scopes(ev[3])
                elif kind == "branch":
                    for arm in ev[1]:
                        find_scopes(arm)

        find_scopes(fn.events)
        yield from findings


# -- R009: blocking under a mutex ---------------------------------------------------

@register
class BlockingUnderMutexRule(ProjectRule):
    id = "R009"
    name = "blocking-under-mutex"
    summary = ("no heavyweight LockManager acquisition may be "
               "reachable while the engine latch or any mutex is held")

    def check_project(self,
                      modules: list[ModuleInfo]) -> Iterator[Finding]:
        project = Project(modules)
        seen: set[tuple] = set()
        for fn in project.functions:
            yield from self._scan(project, fn, fn.events, None, seen)

    def _scan(self, project: Project, fn: FunctionEntry, events: list,
              held, seen: set):
        for ev in events:
            kind = ev[0]
            if kind == "with":
                yield from self._scan(project, fn, ev[3],
                                      held or (ev[1], ev[2]), seen)
            elif kind == "opscope":
                yield from self._scan(project, fn, ev[2], held, seen)
            elif kind == "branch":
                for arm in ev[1]:
                    yield from self._scan(project, fn, arm, held, seen)
            elif held is None:
                continue
            elif kind == "heavy":
                acq = _Acq(ev[1], fn, ev[2], (fn.qualname,))
                yield from self._emit(
                    seen, acq,
                    f"heavyweight {ev[1]} acquired while {fn.qualname} "
                    f"holds {held[0]}; a heavy-lock wait can park the "
                    f"thread until another transaction commits")
            elif kind == "call":
                for callee in project.resolve(fn, ev[1], ev[2]):
                    for acq in project.heavy_summary(callee):
                        yield from self._emit(
                            seen, acq,
                            f"heavyweight {acq.lock_class} acquired "
                            f"while {fn.qualname} holds {held[0]}"
                            f"{_via((fn.qualname,) + acq.chain)}")

    def _emit(self, seen: set, acq: _Acq, message: str):
        key = (acq.entry.module.display_path, acq.node.lineno)
        if key in seen:
            return
        seen.add(key)
        yield self.finding(acq.entry.module, acq.node, message)
