"""Command-line entry point for the invariant linter.

``python -m repro.analysis [--format json] [paths...]`` — also
installed as the ``repro-lint`` console script.  Exits 0 when the tree
is clean, 1 when there are findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.core import all_rules, analyze_paths
from repro.analysis.report import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("AST-based invariant checks for the repro engine "
                     "(latch ordering, scan-layer discipline, smgr-only "
                     "I/O, simulated clock, transaction scope)"))
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to check (default: src/repro)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--strict-suppressions", action="store_true",
        help=("fail (exit 1) when a selected rule's "
              "'# repro: allow(...)' comment suppressed nothing"))
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def _select_rules(spec: str) -> list:
    """Resolve a ``--select`` spec, validating every id up front.

    All unknown ids are reported together (not just the first), and an
    effectively empty selection (``--select ","``) is a usage error —
    silently running zero rules used to exit 0 and look like a clean
    tree.
    """
    ids = [rid.strip() for rid in spec.split(",") if rid.strip()]
    known = {rule.id: rule for rule in all_rules()}
    if not ids:
        raise ValueError(
            f"--select selected no rules from {spec!r} "
            f"(known rules: {', '.join(sorted(known))})")
    unknown = [rid for rid in ids if rid not in known]
    if unknown:
        raise ValueError(
            f"unknown rule(s) {', '.join(unknown)} "
            f"(known rules: {', '.join(sorted(known))})")
    return [known[rid] for rid in ids]


def main(argv: list[str] | None = None) -> int:
    # Ensure the registry is populated even if only cli was imported.
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}: {rule.summary}")
        return 0

    if args.select is not None:
        try:
            rules = _select_rules(args.select)
        except ValueError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        rules = None

    report = analyze_paths(args.paths, rules)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(report))
    if report.findings:
        return 1
    if args.strict_suppressions and report.unused_suppressions:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
