"""Command-line entry point for the invariant linter.

``python -m repro.analysis [--format json] [paths...]`` — also
installed as the ``repro-lint`` console script.  Exits 0 when the tree
is clean, 1 when there are findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.core import all_rules, analyze_paths, get_rule
from repro.analysis.report import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("AST-based invariant checks for the repro engine "
                     "(latch ordering, scan-layer discipline, smgr-only "
                     "I/O, simulated clock, transaction scope)"))
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to check (default: src/repro)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    # Ensure the registry is populated even if only cli was imported.
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}: {rule.summary}")
        return 0

    if args.select:
        try:
            rules = [get_rule(rid.strip())
                     for rid in args.select.split(",") if rid.strip()]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        rules = None

    report = analyze_paths(args.paths, rules)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(report))
    return 1 if report.findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
