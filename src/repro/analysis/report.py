"""Reporters for the invariant linter: human text and machine JSON."""

from __future__ import annotations

import json

from repro.analysis.core import Report


def render_text(report: Report) -> str:
    """ruff-style one-line-per-finding text, with a trailing summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}"
        for f in report.findings
    ]
    for unused in report.unused_suppressions:
        lines.append(
            f"{unused.path}:{unused.line}: warning: suppression for "
            f"{unused.rule} matched no finding (stale 'repro: allow'?)")
    noun = "finding" if len(report.findings) == 1 else "findings"
    summary = (f"{len(report.findings)} {noun} in "
               f"{report.files_checked} file(s) checked")
    if report.suppressed:
        summary += f" ({report.suppressed} suppressed)"
    if report.unused_suppressions:
        summary += (f" [{len(report.unused_suppressions)} unused "
                    f"suppression(s)]")
    lines.append(summary if report.findings else f"OK — {summary}")
    return "\n".join(lines)


def render_json(report: Report) -> str:
    """The full report as a JSON document (stable key order)."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)
