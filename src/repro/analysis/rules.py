"""The project-specific invariant rules (R001–R007).

Each rule encodes one discipline the engine's correctness rests on; the
prose catalogue (with the reasoning and the suppression policy) is
``docs/invariants.md``, and the locking rules specifically are
DESIGN.md §5c.  Rules work on lexical structure only — no type
inference — so each one documents the heuristics it uses to avoid
false positives, and intentional exceptions are annotated in source
with ``# repro: allow(<rule>): <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, register


# -- shared AST helpers -------------------------------------------------------------


def dotted(node: ast.AST) -> str | None:
    """``self.db.locks.acquire`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_skipping_nested_functions(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Every node lexically in *body*, not descending into nested defs."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _references_any(nodes: list[ast.stmt], names: set[str]) -> bool:
    """Whether any Name or attribute access in *nodes* hits *names*."""
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id in names:
                return True
            if isinstance(node, ast.Attribute) and node.attr in names:
                return True
    return False


# -- R001: raw heap/index access stays in the scan layer ----------------------------


@register
class RawAccessRule(Rule):
    """Raw ``HeapRelation.fetch``/``BTree.search`` only in the scan layer.

    DESIGN.md §5c: all index/heap reads go through the scan descriptors
    in ``access/scan.py``, which take the engine latch internally.  A
    raw call anywhere else bypasses latching and visibility and is a
    silent race.  Allowed locations: the scan layer itself, the
    defining modules (``access/heap.py``/``access/btree.py`` call their
    own methods internally), and ``catalog/integrity.py`` diagnostics.

    Heuristics: receivers named ``db`` / ``*.db`` are the ``Database``
    facade (its ``fetch`` latches internally) and are skipped, as are
    regex-ish receivers (``re``, ``*_re``, ``*pattern``) for ``search``.
    """

    id = "R001"
    name = "raw-access"
    summary = ("HeapRelation.fetch/fetch_many and BTree.search/range_scan "
               "must go through repro.access.scan")

    METHODS = frozenset({"fetch", "fetch_many", "search", "range_scan"})
    ALLOWED = ("access/scan.py", "access/heap.py", "access/btree.py",
               "catalog/integrity.py", "analysis/")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.in_package(*self.ALLOWED):
            return
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.METHODS):
                continue
            receiver = dotted(node.func.value)
            if receiver is not None:
                last = receiver.rsplit(".", 1)[-1]
                if last == "db" or last == "database":
                    continue  # Database facade, latches internally
                if node.func.attr == "search" and (
                        receiver == "re"
                        or last.endswith(("_re", "_rx", "pattern", "regex"))):
                    continue  # regular expression, not a B-tree
            yield self.finding(
                module, node,
                f"raw access-method call `{dotted(node.func) or node.func.attr}`"
                f" outside the scan layer — use the descriptors in "
                f"repro.access.scan (IndexProbe/IndexRangeScan/SeqScan), "
                f"which own latching and visibility")


# -- R002: heavyweight locks are taken before the latch, never under it -------------


@register
class LatchOrderRule(Rule):
    """No heavyweight-lock acquisition lexically inside a latch block.

    DESIGN.md §5c: heavyweight locks are always acquired *before* the
    engine latch and never while holding it — a transaction parked on
    an unbounded lock queue while holding the latch stalls every reader
    in the system.  Flags ``*.locks.acquire(...)`` (and
    ``lock_manager`` / ``LockManager`` spellings) inside any
    ``with <...>latch<...>:`` or ``with EngineLatch():`` block.
    """

    id = "R002"
    name = "latch-order"
    summary = ("heavyweight locks (LockManager) must be acquired before "
               "the engine latch, never inside a `with ...latch:` block")

    LOCK_OWNERS = frozenset({"locks", "lock_manager", "lock_mgr",
                             "LockManager"})

    def _is_latch_expr(self, expr: ast.AST) -> bool:
        chain = dotted(expr)
        if chain is not None and "latch" in chain.rsplit(".", 1)[-1].lower():
            return True
        if isinstance(expr, ast.Call):
            name = dotted(expr.func)
            if name is not None and name.rsplit(".", 1)[-1] == "EngineLatch":
                return True
        return False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(self._is_latch_expr(item.context_expr)
                       for item in node.items):
                continue
            for inner in node.body:
                for call in ast.walk(inner):
                    if not (isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr == "acquire"):
                        continue
                    chain = dotted(call.func)
                    if chain is None:
                        continue
                    owners = chain.split(".")[:-1]
                    if any(part in self.LOCK_OWNERS for part in owners):
                        yield self.finding(
                            module, call,
                            f"`{chain}` inside a latch block — heavyweight "
                            f"locks may block indefinitely and must be "
                            f"acquired before the engine latch "
                            f"(DESIGN.md §5c)")


# -- R003: block I/O flows through the storage-manager switch -----------------------


@register
class SmgrOnlyIORule(Rule):
    """Direct file I/O only in the storage managers.

    All engine data flows through the storage-manager switch
    (``smgr/``) so that caching, WORM simulation, and fault injection
    see every block; the external large-object implementations
    (``lo/ufile.py``, ``lo/nativefs.py``) are the paper-sanctioned
    exception (§6.1: the u-file lives outside the database).  Flags
    builtin ``open(...)``, ``os.open`` / ``os.fdopen`` / ``io.open``,
    and ``Path(...).open(...)`` elsewhere.

    ``bench/`` and ``tools/`` are exempt: they read and write *host*
    files (reports, dump/restore archives), not engine data paths.
    """

    id = "R003"
    name = "smgr-only-io"
    summary = ("direct open()/os.open outside smgr/ and the external-file "
               "LO implementations — block I/O goes through the smgr switch")

    ALLOWED = ("smgr/", "lo/ufile.py", "lo/nativefs.py")
    EXEMPT = ("bench/", "tools/", "analysis/")
    OS_OPENERS = frozenset({"os.open", "os.fdopen", "io.open"})

    def _is_direct_open(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            return True
        chain = dotted(func)
        if chain in self.OS_OPENERS:
            return True
        # Path("...").open(...) — only the direct-call form is
        # recognisable without type inference.
        if (isinstance(func, ast.Attribute) and func.attr == "open"
                and isinstance(func.value, ast.Call)):
            ctor = dotted(func.value.func)
            if ctor is not None and ctor.rsplit(".", 1)[-1] == "Path":
                return True
        return False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.in_package(*self.ALLOWED) or module.in_package(*self.EXEMPT):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and self._is_direct_open(node):
                yield self.finding(
                    module, node,
                    "direct file open outside the storage-manager layer — "
                    "route block I/O through the smgr switch (smgr/) so "
                    "caching, WORM accounting, and fault injection see it")


# -- R004: wall-clock time comes from the simulated clock ---------------------------


@register
class SimClockRule(Rule):
    """Wall-clock reads only in ``sim/clock.py``.

    Commit timestamps drive time travel, and benchmarks charge
    simulated seconds; a stray ``time.time()`` smuggles real time into
    either and breaks reproducibility.  Flags ``time.time`` /
    ``monotonic`` / ``perf_counter`` (+ ``_ns`` variants, ``localtime``,
    ``gmtime``), ``datetime.now`` / ``utcnow`` / ``today``, and
    ``date.today`` — whether called via the module or imported directly
    (``from time import time``).
    """

    id = "R004"
    name = "sim-clock"
    summary = ("wall-clock access outside sim/clock.py — timestamps come "
               "from SimClock.now()")

    ALLOWED = ("sim/clock.py", "analysis/")
    BANNED = {
        "time": frozenset({"time", "time_ns", "monotonic", "monotonic_ns",
                           "perf_counter", "perf_counter_ns", "localtime",
                           "gmtime"}),
        "datetime": frozenset({"now", "utcnow", "today"}),
        "date": frozenset({"today"}),
    }

    def _direct_imports(self, module: ModuleInfo) -> set[str]:
        """Local names bound by ``from time/datetime import <banned>``."""
        bound: set[str] = set()
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.ImportFrom)
                    and node.module in ("time", "datetime")):
                for alias in node.names:
                    if alias.name in self.BANNED.get(node.module, frozenset()):
                        bound.add(alias.asname or alias.name)
        return bound

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.in_package(*self.ALLOWED):
            return
        direct = self._direct_imports(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted(node.func)
            if chain is not None and "." in chain:
                base, attr = chain.rsplit(".", 1)
                base_last = base.rsplit(".", 1)[-1]
                if attr in self.BANNED.get(base_last, frozenset()):
                    yield self.finding(
                        module, node,
                        f"`{chain}` reads the wall clock — simulated and "
                        f"logical time come from sim/clock.py (SimClock)")
                    continue
            if (isinstance(node.func, ast.Name)
                    and node.func.id in direct):
                yield self.finding(
                    module, node,
                    f"`{node.func.id}()` (imported from time/datetime) reads "
                    f"the wall clock — use sim/clock.py (SimClock)")


# -- R005: every begin() has a commit/abort on the error path -----------------------


@register
class TxnScopeRule(Rule):
    """A function that begins a transaction must end it on failure.

    An exception between ``begin()`` and ``commit()`` with no guard
    leaks an ACTIVE transaction: its locks stay held and every later
    snapshot treats its xid as in-progress forever.  A ``begin()`` call
    is fine when it is (a) used as a context manager (``with
    db.begin() as txn:`` — ``Transaction.__exit__`` aborts on error),
    (b) directly returned (the caller owns the scope), or (c) inside a
    function itself named ``begin*`` (a delegation wrapper).  Otherwise
    the enclosing function must reference ``commit``/``abort``/
    ``rollback`` inside an ``except`` handler or ``finally`` block.
    """

    id = "R005"
    name = "txn-scope"
    summary = ("begin() without commit/abort on a finally/except path "
               "leaks an ACTIVE transaction on error")

    CLOSERS = frozenset({"commit", "abort", "rollback"})

    def _is_guarded(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    if _references_any(handler.body, self.CLOSERS):
                        return True
                if _references_any(node.finalbody, self.CLOSERS):
                    return True
        return False

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "begin"):
                continue
            parent = module.parent(node)
            if isinstance(parent, ast.withitem):
                continue  # with db.begin() as txn: — __exit__ cleans up
            if isinstance(parent, ast.Return):
                continue  # delegation: caller owns the transaction scope
            enclosing = module.enclosing_function(node)
            if enclosing is None:
                continue  # module-level script code is out of scope
            if enclosing.name.startswith("begin"):
                continue  # begin() wrappers delegate scope to their caller
            if self._is_guarded(enclosing):
                continue
            yield self.finding(
                module, node,
                f"`{dotted(node.func) or 'begin'}()` in "
                f"`{enclosing.name}` has no commit/abort on a "
                f"finally/except path — an exception leaks an ACTIVE "
                f"transaction (use `with ... .begin() as txn:` or a "
                f"try/except that aborts)")


# -- R006: no swallowed exceptions in the engine core -------------------------------


@register
class BareExceptRule(Rule):
    """No bare ``except:`` or ``except Exception: pass`` in the core.

    In ``txn/``, ``smgr/``, ``storage/``, and ``access/`` a swallowed
    exception converts a detectable failure into silent corruption
    (a page half-written, a lock never released).  Bare ``except:`` is
    flagged unconditionally; ``except Exception`` / ``BaseException``
    is flagged when its body does nothing but ``pass``.  Narrow
    handlers (``except ValueError: pass``) are fine.
    """

    id = "R006"
    name = "bare-except-swallows"
    summary = ("bare `except:` or `except Exception: pass` in the engine "
               "core swallows failures that must propagate")

    PACKAGES = ("txn/", "smgr/", "storage/", "access/")
    BROAD = frozenset({"Exception", "BaseException"})

    def _is_noop(self, body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)):
                continue  # docstring or `...`
            return False
        return True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*self.PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare `except:` in the engine core — catch the "
                    "specific exception, or at least re-raise")
                continue
            type_name = dotted(node.type)
            if (type_name is not None
                    and type_name.rsplit(".", 1)[-1] in self.BROAD
                    and self._is_noop(node.body)):
                yield self.finding(
                    module, node,
                    f"`except {type_name}: pass` swallows every failure — "
                    f"narrow the exception type or handle it")


# -- R007: no bytes() copies of buffer slices on the hot path -----------------------


@register
class HotPathBytesCopyRule(Rule):
    """``bytes(buf[a:b])`` is a copy; hot paths hand out memoryviews.

    The zero-copy discipline (docs/performance.md): the slotted page and
    the access layer expose buffer contents as memoryview slices of the
    pinned frame, and the ONE sanctioned copying accessor is
    ``SlottedPage.get_item``.  A ``bytes(...)`` call over a subscript
    slice anywhere else in ``storage/page.py`` or ``access/`` is a
    back-slide into per-item copies — take ``item_view`` (and copy at
    the boundary if the bytes must outlive the pin), or annotate the
    line with ``# repro: allow(R007): <why>`` if the copy is the point.

    Heuristic: lexical only — flags ``bytes(<expr>[<slice>])`` calls;
    copies of whole objects (``bytes(x)``) and constructor calls
    (``bytes(n)``) are not flagged.
    """

    id = "R007"
    name = "no-hot-path-bytes-copy"
    summary = ("bytes() over a buffer slice in storage/page.py or access/ "
               "copies on the hot path — use memoryviews (get_item is the "
               "sanctioned accessor)")

    PACKAGES = ("storage/page.py", "access/")
    SANCTIONED = frozenset({"get_item"})

    def _sanctioned_spans(self, module: ModuleInfo) -> list[tuple[int, int]]:
        spans = []
        for node in ast.walk(module.tree):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in self.SANCTIONED):
                spans.append((node.lineno, node.end_lineno or node.lineno))
        return spans

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*self.PACKAGES):
            return
        spans = self._sanctioned_spans(module)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "bytes"
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Subscript)
                    and isinstance(node.args[0].slice, ast.Slice)):
                continue
            if any(lo <= node.lineno <= hi for lo, hi in spans):
                continue
            yield self.finding(
                module, node,
                "bytes() over a buffer slice copies on the hot path — "
                "return a memoryview (page.item_view) and copy only at "
                "the boundary (page.get_item is the sanctioned accessor)")
