"""The front-end large-object library (the paper's §4 client interface).

POSTGRES applications manipulated large objects through a small C library
whose descendants still ship with PostgreSQL today (``lo_creat``,
``lo_open``, ``lo_lseek``, ...).  This module provides that exact calling
convention over a :class:`~repro.db.Database`, for code ported from (or
to) the historical API:

>>> from repro.db import Database
>>> from repro.client import LargeObjectApi
>>> db = Database()
>>> api = LargeObjectApi(db)
>>> api.begin()
>>> oid = api.lo_creat()
>>> fd = api.lo_open(oid, api.INV_WRITE)
>>> api.lo_write(fd, b"hello")
5
>>> api.lo_lseek(fd, 0, 0)
0
>>> api.lo_read(fd, 5)
b'hello'
>>> api.lo_close(fd)
>>> api.commit()

Descriptors are small integers scoped to the API object; the mode flags
``INV_READ`` / ``INV_WRITE`` are the historical names.
"""

from __future__ import annotations

from repro.db import Database
from repro.errors import LargeObjectError, NoActiveTransaction
from repro.lo.interface import LargeObject
from repro.lo.manager import designator_oid, is_chunked
from repro.session import Session
from repro.txn.manager import Transaction


class LargeObjectApi:
    """libpq-style large-object calls over one database connection.

    The connection state — current transaction, open descriptors — lives
    on a :class:`~repro.session.Session`; this class only translates the
    historical calling convention (integer descriptors, mode bits) onto
    it.  One ``LargeObjectApi`` per thread, like one libpq connection.
    """

    #: Historical inversion-API mode bits.
    INV_READ = 0x40000
    INV_WRITE = 0x20000

    def __init__(self, db: Database):
        self.db = db
        self._session = Session(db)
        self._descriptors: dict[int, LargeObject] = {}
        self._next_fd = 1

    # -- transaction plumbing (lo_* calls require one, as in PostgreSQL) ----

    def begin(self) -> None:
        """Start the connection's transaction."""
        if self._session.in_transaction:
            raise LargeObjectError("transaction already in progress")
        self._session.begin()

    def commit(self) -> None:
        self._require_txn()
        self._descriptors.clear()
        self._session.commit()

    def rollback(self) -> None:
        self._require_txn()
        self._descriptors.clear()
        self._session.rollback()

    def _require_txn(self) -> Transaction:
        if not self._session.in_transaction:
            raise NoActiveTransaction(
                "large-object calls must run inside begin()/commit()")
        return self._session.txn

    # -- object lifecycle ------------------------------------------------------

    def lo_creat(self, impl: str = "fchunk",
                 compression: str = "none") -> int:
        """Create a large object; returns its oid."""
        self._require_txn()
        designator = self._session.lo_create(impl, compression=compression)
        if not is_chunked(designator):
            raise LargeObjectError(
                f"lo_creat supports chunked implementations, not {impl}")
        return designator_oid(designator)

    def lo_unlink(self, oid: int) -> None:
        """Destroy a large object."""
        self._require_txn()
        self._session.lo_unlink(f"lo:{oid}")

    # -- descriptors ------------------------------------------------------------

    def lo_open(self, oid: int, mode: int) -> int:
        """Open object *oid*; returns a descriptor number."""
        if not mode & (self.INV_READ | self.INV_WRITE):
            raise LargeObjectError(f"bad lo_open mode {mode:#x}")
        open_mode = "rw" if mode & self.INV_WRITE else "r"
        self._require_txn()
        handle = self._session.lo_open(f"lo:{oid}", open_mode)
        fd = self._next_fd
        self._next_fd += 1
        self._descriptors[fd] = handle
        return fd

    def _handle(self, fd: int) -> LargeObject:
        handle = self._descriptors.get(fd)
        if handle is None:
            raise LargeObjectError(f"bad large-object descriptor {fd}")
        return handle

    def lo_close(self, fd: int) -> None:
        self._handle(fd).close()
        del self._descriptors[fd]

    # -- I/O -----------------------------------------------------------------------

    def lo_read(self, fd: int, nbytes: int) -> bytes:
        return self._handle(fd).read(nbytes)

    def lo_write(self, fd: int, data: bytes) -> int:
        return self._handle(fd).write(data)

    def lo_lseek(self, fd: int, offset: int, whence: int = 0) -> int:
        return self._handle(fd).seek(offset, whence)

    def lo_tell(self, fd: int) -> int:
        return self._handle(fd).tell()

    def lo_truncate(self, fd: int, length: int) -> None:
        """Resize the object (PostgreSQL added this call much later)."""
        self._handle(fd).truncate(length)

    # -- conveniences (lo_import / lo_export, as in psql) ---------------------------

    def lo_import(self, path: str, impl: str = "fchunk") -> int:
        """Load a real local file into a new large object."""
        oid = self.lo_creat(impl)
        fd = self.lo_open(oid, self.INV_WRITE)
        try:
            # repro: allow(R003): lo_import reads a *host* file into the
            # database (paper §3) — not an engine data path.
            with open(path, "rb") as source:
                while True:
                    piece = source.read(1 << 16)
                    if not piece:
                        break
                    self.lo_write(fd, piece)
        finally:
            self.lo_close(fd)
        return oid

    def lo_export(self, oid: int, path: str) -> int:
        """Write a large object out to a real local file; returns bytes."""
        fd = self.lo_open(oid, self.INV_READ)
        total = 0
        try:
            # repro: allow(R003): lo_export writes a *host* file — not an
            # engine data path.
            with open(path, "wb") as target:
                while True:
                    piece = self.lo_read(fd, 1 << 16)
                    if not piece:
                        break
                    target.write(piece)
                    total += len(piece)
        finally:
            self.lo_close(fd)
        return total
