"""The Inversion file system (§8 of the paper).

    STORAGE   (file-id, large-object)
    DIRECTORY (file-name, file-id, parent-file-id)
    FILESTAT  (file-id, owner, mode, atime, mtime, ctime)

Inversion stores its metadata in ordinary POSTGRES classes and its file
contents in large ADTs, so files inherit everything the storage system
provides: "security, transactions, time travel and compression are
readily available", and "a user can use the query language to perform
searches on the DIRECTORY class."

Consequences implemented and tested here:

* every metadata operation runs in a transaction, and a crash or abort
  rolls back file creation, renames, and writes together;
* ``as_of`` opens a historical view of the whole tree — directory listing,
  stat, and file contents at a past instant;
* the file store is pluggable between f-chunk and v-segment (paper §10:
  "Inversion can use either"), on any registered storage manager — a new
  storage manager automatically supports Inversion files.

Paths are ``/``-separated and rooted at ``/``; ``.`` and ``..``
components resolve lexically (there are no symlinks, so lexical and
physical resolution agree), and ``..`` at the root stays at the root,
exactly as POSIX path resolution specifies.

Concurrency: metadata reads ride MVCC snapshots and take no locks, the
POSTGRES way.  Structural *writes* additionally take heavyweight locks so
two sessions cannot commit incompatible tree mutations (the FileMonkey
stress in :mod:`repro.inversion.monkey` is the regression test):

* ``("inv_entry", parent_id, name)`` EXCLUSIVE — one directory *slot*;
  create/mkdir/unlink/rmdir/rename serialize per slot, then re-resolve
  under a fresh snapshot, so two creators of ``/same/path`` cannot both
  insert (the second sees the first's committed row and raises
  :class:`FileExists`).
* ``("inv_tree", dir_id)`` SHARED on **every directory of the resolved
  ancestor chain** (root → parent, hierarchical order) by each
  structural op; EXCLUSIVE by ``rmdir`` of ``dir_id`` and by a *rename
  that moves directory* ``dir_id``.  The chain locks are what make
  commit order a real serialization: without them, a create deep inside
  ``/a/b`` and a rename of ``/a`` hold no common lock, both commit, and
  the file materializes under a path the creator never named.  With
  them, the mover's EXCLUSIVE on its own subtree root collides with the
  SHARED held by anything operating below it.
* ``("inv_stat", file_id)`` EXCLUSIVE around every FILESTAT update
  (chmod/chown/utime and the atime/mtime maintenance), so concurrent
  time-stamp touches serialize instead of aborting on a write-write
  conflict.
* ``("inv_dirmove",)`` EXCLUSIVE serializes *directory* renames
  globally: two concurrent moves could otherwise each pass the
  ancestry check and commit a cycle.  File renames never take it.

Lock order (DESIGN.md §5c): dirmove → entry (sorted) → tree (top-down)
→ stat → relation/large-object locks.  All are strict-2PL and
deadlock-detected; a victim surfaces :class:`DeadlockError` and the
caller retries or reports, exactly like any other POSTGRES transaction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.access.scan import IndexProbe
from repro.access.tuples import HeapTuple
from repro.errors import (
    DirectoryLoop,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InversionError,
    NotADirectory,
)
from repro.inversion.file import InversionFile
from repro.txn import lockdep
from repro.txn.locks import LockMode
from repro.txn.manager import Transaction
from repro.txn.snapshot import Snapshot

if TYPE_CHECKING:
    from repro.db import Database

DIRECTORY = "DIRECTORY"
STORAGE = "STORAGE"
FILESTAT = "FILESTAT"

#: file_id of the root directory.
ROOT_ID = 1

_KIND_DIR = "d"
_KIND_FILE = "f"

#: Default permission bits (POSIX umask-less defaults).
DEFAULT_FILE_MODE = 0o644
DEFAULT_DIR_MODE = 0o755

#: Bounded retries when a parent directory is concurrently replaced
#: between resolving it and being granted its lock.
_LOCK_RETRIES = 16


def split_path(path: str) -> list[str]:
    """Normalized components of an absolute path ('/' -> []).

    ``.`` components are dropped and ``..`` pops the previous component
    (staying put at the root), the POSIX lexical resolution — exact here
    because Inversion has no symlinks.
    """
    if not path.startswith("/"):
        raise InversionError(f"Inversion paths are absolute, got {path!r}")
    parts: list[str] = []
    for part in path.split("/"):
        if not part or part == ".":
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return parts


class DirEntry:
    """One resolved directory entry."""

    __slots__ = ("name", "file_id", "parent_id", "kind", "tid")

    def __init__(self, tup: HeapTuple):
        self.name, self.file_id, self.parent_id, self.kind = tup.values
        self.tid = tup.tid

    @property
    def is_dir(self) -> bool:
        return self.kind == _KIND_DIR


class InversionFileSystem:
    """A file system whose files are database large objects."""

    def __init__(self, db: "Database", impl: str = "fchunk",
                 compression: str = "none", smgr: str | None = None,
                 owner: str = "postgres"):
        from repro.adt.types import normalize_storage
        self.db = db
        self.impl = normalize_storage(impl)
        if self.impl not in ("fchunk", "vsegment"):
            raise InversionError(
                "Inversion files need a transactional implementation "
                "(f-chunk or v-segment)")
        self.compression = compression
        self.smgr = smgr
        self.owner = owner
        self._bootstrap()

    def _bootstrap(self) -> None:
        if not self.db.class_exists(DIRECTORY):
            self.db.create_class(DIRECTORY, [
                ("file_name", "text"), ("file_id", "oid"),
                ("parent_file_id", "oid"), ("kind", "text")])
            self.db.create_index("inv_dir_parent", DIRECTORY,
                                 "parent_file_id")
            self.db.create_class(STORAGE, [
                ("file_id", "oid"), ("large_object", "text")])
            self.db.create_index("inv_storage_fid", STORAGE, "file_id")
            self.db.create_class(FILESTAT, [
                ("file_id", "oid"), ("owner", "text"), ("mode", "int4"),
                ("atime", "float8"), ("mtime", "float8"),
                ("ctime", "float8")])
            self.db.create_index("inv_stat_fid", FILESTAT, "file_id")

    # -- lookups -------------------------------------------------------------------

    def _snapshot(self, txn: Transaction | None,
                  as_of: float | None) -> Snapshot:
        return self.db.snapshot(txn, as_of=as_of)

    def _rows_by_index(self, index_name: str, key: int,
                       snapshot: Snapshot) -> list[HeapTuple]:
        index = self.db.get_index(index_name)
        entry = self.db.catalog.indexes[index_name]
        relation = self.db.get_class(entry.relation)
        return IndexProbe(self.db, index, relation,
                          (key,)).tuples(snapshot)

    def _children(self, parent_id: int,
                  snapshot: Snapshot) -> list[DirEntry]:
        return [DirEntry(t) for t in
                self._rows_by_index("inv_dir_parent", parent_id, snapshot)]

    def _child(self, parent_id: int, name: str,
               snapshot: Snapshot) -> DirEntry | None:
        for entry in self._children(parent_id, snapshot):
            if entry.name == name:
                return entry
        return None

    def _resolve(self, path: str, snapshot: Snapshot) -> DirEntry | None:
        """The entry at *path*, or ``None``; root resolves to a pseudo-entry."""
        parts = split_path(path)
        current: DirEntry | None = None
        parent_id = ROOT_ID
        for i, name in enumerate(parts):
            if current is not None:
                if not current.is_dir:
                    raise NotADirectory(
                        f"{'/'.join(parts[:i])!r} is not a directory")
                parent_id = current.file_id
            current = self._child(parent_id, name, snapshot)
            if current is None:
                return None
        return current

    def _resolve_chain(self, parts: list[str],
                       snapshot: Snapshot) -> list[DirEntry] | None:
        """Every entry on the path, root-child first, or ``None`` if any
        component is missing (raises :class:`NotADirectory` if a non-leaf
        component is a plain file)."""
        chain: list[DirEntry] = []
        parent_id = ROOT_ID
        for i, name in enumerate(parts):
            if chain:
                if not chain[-1].is_dir:
                    raise NotADirectory(
                        f"{'/' + '/'.join(parts[:i])!r} is not a directory")
                parent_id = chain[-1].file_id
            entry = self._child(parent_id, name, snapshot)
            if entry is None:
                return None
            chain.append(entry)
        return chain

    def _require(self, path: str, snapshot: Snapshot) -> DirEntry:
        if not split_path(path):
            raise InversionError("operation not valid on the root")
        entry = self._resolve(path, snapshot)
        if entry is None:
            raise FileNotFound(f"no Inversion file {path!r}")
        return entry

    def _parent_of(self, path: str,
                   snapshot: Snapshot) -> tuple[int, str]:
        """(parent file_id, leaf name) for *path*, verifying the parent."""
        parts = split_path(path)
        if not parts:
            raise InversionError("cannot create the root")
        if len(parts) == 1:
            return ROOT_ID, parts[0]
        parent = self._resolve("/" + "/".join(parts[:-1]), snapshot)
        if parent is None:
            raise FileNotFound(
                f"no Inversion directory {'/' + '/'.join(parts[:-1])!r}")
        if not parent.is_dir:
            raise NotADirectory(
                f"{'/' + '/'.join(parts[:-1])!r} is not a directory")
        return parent.file_id, parts[-1]

    # -- write-side locking (module docstring has the full protocol) ---------------

    def _lock_entry(self, txn: Transaction, parent_id: int,
                    name: str) -> None:
        self.db.locks.acquire(txn.xid, ("inv_entry", parent_id, name),
                              LockMode.EXCLUSIVE)

    def _lock_tree(self, txn: Transaction, dir_id: int,
                   mode: LockMode) -> None:
        self.db.locks.acquire(txn.xid, ("inv_tree", dir_id), mode)

    def _lock_stat(self, txn: Transaction, file_id: int) -> None:
        self.db.locks.acquire(txn.xid, ("inv_stat", file_id),
                              LockMode.EXCLUSIVE)

    def _locked_parent(self, txn: Transaction,
                       path: str) -> tuple[int, str, Snapshot]:
        """Lock *path*'s directory slot and its whole ancestor chain.

        Returns (parent_id, leaf name, post-lock snapshot).  The slot is
        EXCLUSIVE; every directory from the root down to the parent is
        SHARED, so a rename that moves any ancestor (EXCLUSIVE on the
        moved directory) cannot interleave — the path the caller named
        still means the same inodes when its transaction commits.

        Lock keys are file ids, which we only know *before* being granted
        the locks — so after each grant the chain is re-resolved under a
        fresh snapshot and retried if any ancestor was replaced while we
        waited.  Raises :class:`FileNotFound`/:class:`NotADirectory` if
        the parent path is (or becomes) invalid.
        """
        parts = split_path(path)
        if not parts:
            raise InversionError("cannot create the root")
        parent_parts, name = parts[:-1], parts[-1]
        parent_repr = "/" + "/".join(parent_parts)
        snapshot = self._snapshot(txn, None)
        for _ in range(_LOCK_RETRIES):
            # One lockdep operation scope per locking *attempt*: a retry
            # legitimately starts the entry -> tree sequence over while
            # 2PL still holds the previous attempt's locks.
            with lockdep.VALIDATOR.operation(f"path-lock {path!r}"):
                chain = self._resolve_chain(parent_parts, snapshot)
                if chain is None:
                    raise FileNotFound(
                        f"no Inversion directory {parent_repr!r}")
                if chain and not chain[-1].is_dir:
                    raise NotADirectory(
                        f"{parent_repr!r} is not a directory")
                ids = [ROOT_ID] + [entry.file_id for entry in chain]
                self._lock_entry(txn, ids[-1], name)
                for dir_id in ids:
                    self._lock_tree(txn, dir_id, LockMode.SHARED)
                snapshot = self._snapshot(txn, None)
                fresh = self._resolve_chain(parent_parts, snapshot)
                if fresh is not None and \
                        [e.file_id for e in fresh] == ids[1:]:
                    return ids[-1], name, snapshot
        raise InversionError(
            f"directory chain for {path!r} kept moving; giving up")

    def _locked_entry(self, txn: Transaction,
                      path: str) -> tuple[DirEntry, Snapshot]:
        """Resolve *path* and hold its directory-slot lock; the returned
        entry (and TID) is current as of the post-lock snapshot."""
        if not split_path(path):
            raise InversionError("operation not valid on the root")
        parent_id, name, snapshot = self._locked_parent(txn, path)
        entry = self._child(parent_id, name, snapshot)
        if entry is None:
            raise FileNotFound(f"no Inversion file {path!r}")
        return entry, snapshot

    # -- creation ------------------------------------------------------------------

    def _new_entry(self, txn: Transaction, path: str, kind: str,
                   mode: int) -> int:
        parent_id, name, snapshot = self._locked_parent(txn, path)
        if self._child(parent_id, name, snapshot) is not None:
            raise FileExists(f"Inversion path {path!r} already exists")
        file_id = self.db.catalog.allocate_oid()
        self.db.insert(txn, DIRECTORY, (name, file_id, parent_id, kind))
        now = self.db.clock.now()
        self.db.insert(txn, FILESTAT,
                       (file_id, self.owner, mode & 0o7777, now, now, now))
        return file_id

    def mkdir(self, txn: Transaction, path: str,
              mode: int = DEFAULT_DIR_MODE) -> int:
        """Create a directory; returns its file id."""
        return self._new_entry(txn, path, _KIND_DIR, mode)

    def create(self, txn: Transaction, path: str,
               impl: str | None = None,
               compression: str | None = None,
               mode: int = DEFAULT_FILE_MODE) -> InversionFile:
        """Create a file (open for writing); storage defaults to the
        file system's configured implementation."""
        file_id = self._new_entry(txn, path, _KIND_FILE, mode)
        designator = self.db.lo.create(
            txn, impl or self.impl, smgr=self.smgr,
            compression=self.compression if compression is None
            else compression)
        self.db.insert(txn, STORAGE, (file_id, designator))
        inner = self.db.lo.open(designator, txn, "rw")
        return InversionFile(self, path, file_id, inner, txn)

    # -- open / IO -----------------------------------------------------------------

    def open(self, path: str, txn: Transaction | None = None,
             mode: str = "r", as_of: float | None = None) -> InversionFile:
        """Open an existing file (``mode`` = ``"r"`` or ``"rw"``).

        When the handle is bound to a live transaction, reading through it
        updates the file's ``atime`` and writing updates its ``mtime`` at
        close (POSIX read/write time maintenance).  Detached snapshot
        reads (``txn=None`` or ``as_of``) leave FILESTAT untouched.
        """
        snapshot = self._snapshot(txn, as_of)
        entry = self._require(path, snapshot)
        if entry.is_dir:
            raise InversionError(f"{path!r} is a directory")
        rows = self._rows_by_index("inv_storage_fid", entry.file_id,
                                   snapshot)
        if not rows:
            raise InversionError(f"{path!r} has no STORAGE record")
        designator = rows[0].values[1]
        inner = self.db.lo.open(designator, txn, mode, as_of=as_of)
        return InversionFile(self, path, entry.file_id, inner, txn)

    def read_file(self, path: str, txn: Transaction | None = None,
                  as_of: float | None = None) -> bytes:
        """Whole-file read convenience."""
        with self.open(path, txn, "r", as_of=as_of) as handle:
            return handle.read()

    def write_file(self, txn: Transaction, path: str, data: bytes) -> None:
        """Create-or-replace convenience: afterwards the file contains
        exactly *data* (existing files are truncated first)."""
        snapshot = self._snapshot(txn, None)
        if self._resolve(path, snapshot) is None:
            try:
                handle = self.create(txn, path)
            except FileExists:
                # Lost a create race: the slot lock wait ended with another
                # session's committed file — replace its contents instead.
                handle = self.open(path, txn, "rw")
                handle.truncate(0)
        else:
            handle = self.open(path, txn, "rw")
            handle.truncate(0)
        with handle:
            handle.write(data)

    # -- metadata ------------------------------------------------------------------

    def exists(self, path: str, txn: Transaction | None = None,
               as_of: float | None = None) -> bool:
        if not split_path(path):
            return True
        return self._resolve(path, self._snapshot(txn, as_of)) is not None

    def is_dir(self, path: str, txn: Transaction | None = None,
               as_of: float | None = None) -> bool:
        if not split_path(path):
            return True
        entry = self._resolve(path, self._snapshot(txn, as_of))
        return entry is not None and entry.is_dir

    def listdir(self, path: str = "/", txn: Transaction | None = None,
                as_of: float | None = None) -> list[str]:
        """Names in a directory, sorted."""
        snapshot = self._snapshot(txn, as_of)
        if split_path(path):
            entry = self._require(path, snapshot)
            if not entry.is_dir:
                raise NotADirectory(f"{path!r} is not a directory")
            parent_id = entry.file_id
        else:
            parent_id = ROOT_ID
        return sorted(e.name for e in self._children(parent_id, snapshot))

    def stat(self, path: str, txn: Transaction | None = None,
             as_of: float | None = None) -> dict:
        """owner/mode/times/size/kind for *path*."""
        snapshot = self._snapshot(txn, as_of)
        entry = self._require(path, snapshot)
        rows = self._rows_by_index("inv_stat_fid", entry.file_id, snapshot)
        if not rows:
            raise InversionError(f"{path!r} has no FILESTAT record")
        _fid, owner, mode, atime, mtime, ctime = rows[0].values
        size = 0
        if not entry.is_dir:
            with self.open(path, txn, "r", as_of=as_of) as handle:
                size = handle.size()
        return {"file_id": entry.file_id, "kind": entry.kind,
                "owner": owner, "mode": mode, "atime": atime,
                "mtime": mtime, "ctime": ctime, "size": size}

    def _update_stat(self, txn: Transaction, file_id: int, *,
                     owner: str | None = None, mode: int | None = None,
                     atime: float | None = None, mtime: float | None = None,
                     touch_ctime: bool = False) -> bool:
        """Replace the FILESTAT row under its ``inv_stat`` lock.

        Returns ``False`` if the row is gone (the file was concurrently
        unlinked) — callers decide whether that is an error.
        """
        self._lock_stat(txn, file_id)
        snapshot = self._snapshot(txn, None)
        rows = self._rows_by_index("inv_stat_fid", file_id, snapshot)
        if not rows:
            return False
        values = list(rows[0].values)
        if owner is not None:
            values[1] = owner
        if mode is not None:
            values[2] = mode & 0o7777
        if atime is not None:
            values[3] = atime
        if mtime is not None:
            values[4] = mtime
        if touch_ctime:
            values[5] = self.db.clock.now()
        self.db.replace(txn, FILESTAT, rows[0].tid, tuple(values))
        return True

    def chmod(self, txn: Transaction, path: str, mode: int) -> int:
        """Set the permission bits (and bump ``ctime``, as POSIX does).

        Returns the file id the bits landed on — the id stays
        stat-locked until commit, so the caller knows *which* inode its
        change applies to even if the path is concurrently renamed.
        """
        snapshot = self._snapshot(txn, None)
        entry = self._require(path, snapshot)
        if not self._update_stat(txn, entry.file_id, mode=mode,
                                 touch_ctime=True):
            raise FileNotFound(f"no Inversion file {path!r}")
        return entry.file_id

    def chown(self, txn: Transaction, path: str, owner: str) -> int:
        """Set the owner (and bump ``ctime``); returns the file id."""
        snapshot = self._snapshot(txn, None)
        entry = self._require(path, snapshot)
        if not self._update_stat(txn, entry.file_id, owner=owner,
                                 touch_ctime=True):
            raise FileNotFound(f"no Inversion file {path!r}")
        return entry.file_id

    def utime(self, txn: Transaction, path: str,
              atime: float | None = None,
              mtime: float | None = None) -> int:
        """Set access/modification times; both default to *now* when
        omitted (``utime(path, NULL)`` in POSIX).  ``ctime`` is bumped;
        returns the file id."""
        if atime is None and mtime is None:
            atime = mtime = self.db.clock.now()
        snapshot = self._snapshot(txn, None)
        entry = self._require(path, snapshot)
        if not self._update_stat(txn, entry.file_id, atime=atime,
                                 mtime=mtime, touch_ctime=True):
            raise FileNotFound(f"no Inversion file {path!r}")
        return entry.file_id

    def _file_closed(self, txn: Transaction, file_id: int,
                     wrote: bool, accessed: bool) -> None:
        """POSIX time maintenance when a transaction-bound handle closes:
        reads update ``atime``, writes update ``mtime``."""
        now = self.db.clock.now()
        self._update_stat(txn, file_id,
                          atime=now if accessed else None,
                          mtime=now if wrote else None)

    def _touch_mtime(self, txn: Transaction, file_id: int) -> None:
        self._update_stat(txn, file_id, mtime=self.db.clock.now())

    # -- removal / rename ----------------------------------------------------------

    def unlink(self, txn: Transaction, path: str) -> None:
        """Remove a file (its historical versions stay time-travellable
        through the old DIRECTORY tuple versions)."""
        entry, snapshot = self._locked_entry(txn, path)
        if entry.is_dir:
            raise InversionError(f"{path!r} is a directory; use rmdir")
        self._lock_stat(txn, entry.file_id)
        snapshot = self._snapshot(txn, None)
        self.db.delete(txn, DIRECTORY, entry.tid)
        for row in self._rows_by_index("inv_storage_fid", entry.file_id,
                                       snapshot):
            self.db.delete(txn, STORAGE, row.tid)
        for row in self._rows_by_index("inv_stat_fid", entry.file_id,
                                       snapshot):
            self.db.delete(txn, FILESTAT, row.tid)

    def rmdir(self, txn: Transaction, path: str) -> None:
        """Remove an empty directory."""
        entry, snapshot = self._locked_entry(txn, path)
        if not entry.is_dir:
            raise NotADirectory(f"{path!r} is not a directory")
        # EXCLUSIVE on the directory's tree key: in-flight creates inside
        # it hold SHARED, so emptiness cannot be invalidated after we
        # re-check it below.
        with lockdep.VALIDATOR.operation(f"rmdir-lock {path!r}"):
            self._lock_tree(txn, entry.file_id, LockMode.EXCLUSIVE)
            self._lock_stat(txn, entry.file_id)
        snapshot = self._snapshot(txn, None)
        if self._children(entry.file_id, snapshot):
            raise DirectoryNotEmpty(f"{path!r} is not empty")
        self.db.delete(txn, DIRECTORY, entry.tid)
        for row in self._rows_by_index("inv_stat_fid", entry.file_id,
                                       snapshot):
            self.db.delete(txn, FILESTAT, row.tid)

    def rename(self, txn: Transaction, src: str, dst: str) -> None:
        """Move/rename a file or directory (one atomic tuple replace).

        Deviations from POSIX, both deliberate (DESIGN.md §5d): renaming
        *over* an existing destination raises :class:`FileExists` instead
        of replacing it, and renaming a directory into its own subtree
        raises :class:`DirectoryLoop` (POSIX ``EINVAL``) — before this
        check existed, such a rename committed an unreachable cycle.
        """
        src_parts = split_path(src)
        dst_parts = split_path(dst)
        if not src_parts:
            raise InversionError("cannot rename the root")
        if not dst_parts:
            raise FileExists("Inversion path '/' already exists")
        snapshot = self._snapshot(txn, None)
        entry = self._require(src, snapshot)
        if src_parts == dst_parts:
            return  # POSIX: rename to the same path is a no-op success.
        if entry.is_dir and dst_parts[:len(src_parts)] == src_parts:
            raise DirectoryLoop(
                f"cannot rename {src!r} into its own subtree ({dst!r})")
        dirmove_held = False
        for _ in range(_LOCK_RETRIES):
            src_chain = self._resolve_chain(src_parts[:-1], snapshot)
            dst_chain = self._resolve_chain(dst_parts[:-1], snapshot)
            if src_chain is None:
                raise FileNotFound(f"no Inversion file {src!r}")
            if dst_chain is None:
                raise FileNotFound(
                    f"no Inversion directory "
                    f"{'/' + '/'.join(dst_parts[:-1])!r}")
            for chain, label in ((src_chain, src), (dst_chain, dst)):
                if chain and not chain[-1].is_dir:
                    raise NotADirectory(
                        f"parent of {label!r} is not a directory")
            src_ids = [ROOT_ID] + [e.file_id for e in src_chain]
            dst_ids = [ROOT_ID] + [e.file_id for e in dst_chain]
            src_name, dst_name = src_parts[-1], dst_parts[-1]
            moving = self._child(src_ids[-1], src_name, snapshot)
            # One lockdep operation scope per locking attempt (see
            # _locked_parent): dirmove -> entry -> tree, checked against
            # the declared inv_* order in repro/txn/lockdep.py.
            with lockdep.VALIDATOR.operation(f"rename-lock {src!r}"):
                if moving is not None and moving.is_dir \
                        and not dirmove_held:
                    # One directory mover at a time: two concurrent
                    # moves could each pass the ancestry check, then
                    # commit a cycle together.
                    self.db.locks.acquire(txn.xid, ("inv_dirmove",),
                                          LockMode.EXCLUSIVE)
                    dirmove_held = True
                for key in sorted({(src_ids[-1], src_name),
                                   (dst_ids[-1], dst_name)}):
                    self._lock_entry(txn, *key)
                for dir_id in sorted(set(src_ids) | set(dst_ids)):
                    self._lock_tree(txn, dir_id, LockMode.SHARED)
                if moving is not None and moving.is_dir:
                    # EXCLUSIVE on the moved subtree's root: every op
                    # below it holds this key SHARED in its ancestor
                    # chain, so nothing can land inside the subtree
                    # while it moves.
                    self._lock_tree(txn, moving.file_id,
                                    LockMode.EXCLUSIVE)
            snapshot = self._snapshot(txn, None)
            fresh_src = self._resolve_chain(src_parts[:-1], snapshot)
            fresh_dst = self._resolve_chain(dst_parts[:-1], snapshot)
            fresh_moving = None if fresh_src is None else \
                self._child(src_ids[-1], src_name, snapshot)
            same_moving = (
                (fresh_moving is None and moving is None)
                or (fresh_moving is not None and moving is not None
                    and fresh_moving.file_id == moving.file_id
                    and fresh_moving.is_dir == moving.is_dir))
            if (fresh_src is not None and fresh_dst is not None
                    and [e.file_id for e in fresh_src] == src_ids[1:]
                    and [e.file_id for e in fresh_dst] == dst_ids[1:]
                    and same_moving):
                break
        else:
            raise InversionError(
                f"directory chains for {src!r}/{dst!r} kept moving; "
                f"giving up")
        entry = self._child(src_ids[-1], src_name, snapshot)
        if entry is None:
            raise FileNotFound(f"no Inversion file {src!r}")
        if self._child(dst_ids[-1], dst_name, snapshot) is not None:
            raise FileExists(f"Inversion path {dst!r} already exists")
        if entry.is_dir:
            # Re-check ancestry by file id under the locks: the lexical
            # check above ran on a pre-lock snapshot, and the slot names
            # prove nothing about where the ids now live.
            if entry.file_id in dst_ids:
                raise DirectoryLoop(
                    f"cannot rename {src!r} into its own subtree "
                    f"({dst!r})")
        self.db.replace(txn, DIRECTORY, entry.tid,
                        (dst_name, entry.file_id, dst_ids[-1],
                         entry.kind))
        # POSIX rename updates the entry's status-change time.
        self._update_stat(txn, entry.file_id, touch_ctime=True)

    # -- traversal -----------------------------------------------------------------

    def import_tree(self, txn: Transaction, os_path: str,
                    inv_path: str = "/") -> int:
        """Copy a real directory tree into Inversion; returns files copied.

        The inverse of exporting: the whole import is one transaction, so
        a failure imports nothing.  Permission bits are carried over into
        FILESTAT (``mode & 0o7777``), directories included.
        """
        import os
        import stat as statmod
        copied = 0
        base = os.path.abspath(os_path)
        for dirpath, dirnames, filenames in os.walk(base):
            relative = os.path.relpath(dirpath, base)
            if relative == ".":
                target_dir = inv_path.rstrip("/") or ""
            else:
                target_dir = (inv_path.rstrip("/") + "/"
                              + relative.replace(os.sep, "/"))
                if not self.exists(target_dir or "/", txn):
                    self.mkdir(txn, target_dir,
                               mode=statmod.S_IMODE(
                                   os.stat(dirpath).st_mode))
            dirnames.sort()
            for filename in sorted(filenames):
                host = os.path.join(dirpath, filename)
                # repro: allow(R003): import_tree copies *host* files
                # into Inversion — not an engine data path.
                with open(host, "rb") as fh:
                    data = fh.read()
                target = f"{target_dir}/{filename}"
                self.write_file(txn, target, data)
                self.chmod(txn, target,
                           statmod.S_IMODE(os.stat(host).st_mode))
                copied += 1
        return copied

    def export_tree(self, inv_path: str, os_path: str,
                    txn: Transaction | None = None,
                    as_of: float | None = None) -> int:
        """Copy an Inversion tree out to a real directory; returns files.

        With ``as_of``, exports the tree *as it was* — a point-in-time
        backup straight out of the no-overwrite storage system.  FILESTAT
        permission bits are applied to the exported files; directory modes
        are applied last (a read-only directory must still accept its own
        children first).
        """
        import os
        os.makedirs(os_path, exist_ok=True)
        exported = 0
        dir_modes: list[tuple[str, int]] = []
        for current, dirs, files in self.walk(inv_path, txn, as_of=as_of):
            relative = current[len(inv_path.rstrip("/")):].lstrip("/")
            target_dir = os.path.join(os_path, relative) if relative \
                else os_path
            os.makedirs(target_dir, exist_ok=True)
            if split_path(current):
                dir_modes.append(
                    (target_dir,
                     self.stat(current, txn, as_of=as_of)["mode"]))
            for name in files:
                source = f"{current.rstrip('/')}/{name}"
                data = self.read_file(source, txn, as_of=as_of)
                target = os.path.join(target_dir, name)
                # repro: allow(R003): export_tree writes *host* files —
                # not an engine data path.
                with open(target, "wb") as fh:
                    fh.write(data)
                os.chmod(target, self.stat(source, txn,
                                           as_of=as_of)["mode"])
                exported += 1
        for target_dir, mode in reversed(dir_modes):
            os.chmod(target_dir, mode)
        return exported

    def walk(self, path: str = "/", txn: Transaction | None = None,
             as_of: float | None = None
             ) -> Iterator[tuple[str, list[str], list[str]]]:
        """Like :func:`os.walk` over the Inversion tree."""
        snapshot = self._snapshot(txn, as_of)
        if split_path(path):
            start = self._require(path, snapshot)
            if not start.is_dir:
                raise NotADirectory(f"{path!r} is not a directory")
            stack = [("/" + "/".join(split_path(path)), start.file_id)]
        else:
            stack = [("/", ROOT_ID)]
        while stack:
            current_path, file_id = stack.pop()
            children = self._children(file_id, snapshot)
            dirs = sorted(c.name for c in children if c.is_dir)
            files = sorted(c.name for c in children if not c.is_dir)
            yield current_path, dirs, files
            base = current_path.rstrip("/")
            for child in children:
                if child.is_dir:
                    stack.append((f"{base}/{child.name}", child.file_id))
