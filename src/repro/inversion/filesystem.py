"""The Inversion file system (§8 of the paper).

    STORAGE   (file-id, large-object)
    DIRECTORY (file-name, file-id, parent-file-id)
    FILESTAT  (file-id, owner, mode, atime, mtime, ctime)

Inversion stores its metadata in ordinary POSTGRES classes and its file
contents in large ADTs, so files inherit everything the storage system
provides: "security, transactions, time travel and compression are
readily available", and "a user can use the query language to perform
searches on the DIRECTORY class."

Consequences implemented and tested here:

* every metadata operation runs in a transaction, and a crash or abort
  rolls back file creation, renames, and writes together;
* ``as_of`` opens a historical view of the whole tree — directory listing,
  stat, and file contents at a past instant;
* the file store is pluggable between f-chunk and v-segment (paper §10:
  "Inversion can use either"), on any registered storage manager — a new
  storage manager automatically supports Inversion files.

Paths are ``/``-separated and rooted at ``/``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.access.scan import IndexProbe
from repro.access.tuples import HeapTuple
from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InversionError,
    NotADirectory,
)
from repro.inversion.file import InversionFile
from repro.txn.manager import Transaction
from repro.txn.snapshot import Snapshot

if TYPE_CHECKING:
    from repro.db import Database

DIRECTORY = "DIRECTORY"
STORAGE = "STORAGE"
FILESTAT = "FILESTAT"

#: file_id of the root directory.
ROOT_ID = 1

_KIND_DIR = "d"
_KIND_FILE = "f"


def split_path(path: str) -> list[str]:
    """Path components of an absolute path ('/' -> [])."""
    if not path.startswith("/"):
        raise InversionError(f"Inversion paths are absolute, got {path!r}")
    return [part for part in path.split("/") if part]


class DirEntry:
    """One resolved directory entry."""

    __slots__ = ("name", "file_id", "parent_id", "kind", "tid")

    def __init__(self, tup: HeapTuple):
        self.name, self.file_id, self.parent_id, self.kind = tup.values
        self.tid = tup.tid

    @property
    def is_dir(self) -> bool:
        return self.kind == _KIND_DIR


class InversionFileSystem:
    """A file system whose files are database large objects."""

    def __init__(self, db: "Database", impl: str = "fchunk",
                 compression: str = "none", smgr: str | None = None,
                 owner: str = "postgres"):
        from repro.adt.types import normalize_storage
        self.db = db
        self.impl = normalize_storage(impl)
        if self.impl not in ("fchunk", "vsegment"):
            raise InversionError(
                "Inversion files need a transactional implementation "
                "(f-chunk or v-segment)")
        self.compression = compression
        self.smgr = smgr
        self.owner = owner
        self._bootstrap()

    def _bootstrap(self) -> None:
        if not self.db.class_exists(DIRECTORY):
            self.db.create_class(DIRECTORY, [
                ("file_name", "text"), ("file_id", "oid"),
                ("parent_file_id", "oid"), ("kind", "text")])
            self.db.create_index("inv_dir_parent", DIRECTORY,
                                 "parent_file_id")
            self.db.create_class(STORAGE, [
                ("file_id", "oid"), ("large_object", "text")])
            self.db.create_index("inv_storage_fid", STORAGE, "file_id")
            self.db.create_class(FILESTAT, [
                ("file_id", "oid"), ("owner", "text"), ("mode", "int4"),
                ("atime", "float8"), ("mtime", "float8"),
                ("ctime", "float8")])
            self.db.create_index("inv_stat_fid", FILESTAT, "file_id")

    # -- lookups -------------------------------------------------------------------

    def _snapshot(self, txn: Transaction | None,
                  as_of: float | None) -> Snapshot:
        return self.db.snapshot(txn, as_of=as_of)

    def _rows_by_index(self, index_name: str, key: int,
                       snapshot: Snapshot) -> list[HeapTuple]:
        index = self.db.get_index(index_name)
        entry = self.db.catalog.indexes[index_name]
        relation = self.db.get_class(entry.relation)
        return IndexProbe(self.db, index, relation,
                          (key,)).tuples(snapshot)

    def _children(self, parent_id: int,
                  snapshot: Snapshot) -> list[DirEntry]:
        return [DirEntry(t) for t in
                self._rows_by_index("inv_dir_parent", parent_id, snapshot)]

    def _child(self, parent_id: int, name: str,
               snapshot: Snapshot) -> DirEntry | None:
        for entry in self._children(parent_id, snapshot):
            if entry.name == name:
                return entry
        return None

    def _resolve(self, path: str, snapshot: Snapshot) -> DirEntry | None:
        """The entry at *path*, or ``None``; root resolves to a pseudo-entry."""
        parts = split_path(path)
        current: DirEntry | None = None
        parent_id = ROOT_ID
        for i, name in enumerate(parts):
            if current is not None:
                if not current.is_dir:
                    raise NotADirectory(
                        f"{'/'.join(parts[:i])!r} is not a directory")
                parent_id = current.file_id
            current = self._child(parent_id, name, snapshot)
            if current is None:
                return None
        return current

    def _require(self, path: str, snapshot: Snapshot) -> DirEntry:
        if not split_path(path):
            raise InversionError(f"operation not valid on the root")
        entry = self._resolve(path, snapshot)
        if entry is None:
            raise FileNotFound(f"no Inversion file {path!r}")
        return entry

    def _parent_of(self, path: str,
                   snapshot: Snapshot) -> tuple[int, str]:
        """(parent file_id, leaf name) for *path*, verifying the parent."""
        parts = split_path(path)
        if not parts:
            raise InversionError(f"cannot create the root")
        if len(parts) == 1:
            return ROOT_ID, parts[0]
        parent = self._resolve("/" + "/".join(parts[:-1]), snapshot)
        if parent is None:
            raise FileNotFound(
                f"no Inversion directory {'/' + '/'.join(parts[:-1])!r}")
        if not parent.is_dir:
            raise NotADirectory(
                f"{'/' + '/'.join(parts[:-1])!r} is not a directory")
        return parent.file_id, parts[-1]

    # -- creation ------------------------------------------------------------------------

    def _new_entry(self, txn: Transaction, path: str, kind: str) -> int:
        snapshot = self._snapshot(txn, None)
        parent_id, name = self._parent_of(path, snapshot)
        if self._child(parent_id, name, snapshot) is not None:
            raise FileExists(f"Inversion path {path!r} already exists")
        file_id = self.db.catalog.allocate_oid()
        self.db.insert(txn, DIRECTORY, (name, file_id, parent_id, kind))
        now = self.db.clock.now()
        self.db.insert(txn, FILESTAT,
                       (file_id, self.owner, 0o644, now, now, now))
        return file_id

    def mkdir(self, txn: Transaction, path: str) -> int:
        """Create a directory; returns its file id."""
        return self._new_entry(txn, path, _KIND_DIR)

    def create(self, txn: Transaction, path: str,
               impl: str | None = None,
               compression: str | None = None) -> InversionFile:
        """Create a file (open for writing); storage defaults to the
        file system's configured implementation."""
        file_id = self._new_entry(txn, path, _KIND_FILE)
        designator = self.db.lo.create(
            txn, impl or self.impl, smgr=self.smgr,
            compression=self.compression if compression is None
            else compression)
        self.db.insert(txn, STORAGE, (file_id, designator))
        inner = self.db.lo.open(designator, txn, "rw")
        return InversionFile(self, path, file_id, inner, txn)

    # -- open / IO -----------------------------------------------------------------------------

    def open(self, path: str, txn: Transaction | None = None,
             mode: str = "r", as_of: float | None = None) -> InversionFile:
        """Open an existing file (``mode`` = ``"r"`` or ``"rw"``)."""
        snapshot = self._snapshot(txn, as_of)
        entry = self._require(path, snapshot)
        if entry.is_dir:
            raise InversionError(f"{path!r} is a directory")
        rows = self._rows_by_index("inv_storage_fid", entry.file_id,
                                   snapshot)
        if not rows:
            raise InversionError(f"{path!r} has no STORAGE record")
        designator = rows[0].values[1]
        inner = self.db.lo.open(designator, txn, mode, as_of=as_of)
        return InversionFile(self, path, entry.file_id, inner, txn)

    def read_file(self, path: str, txn: Transaction | None = None,
                  as_of: float | None = None) -> bytes:
        """Whole-file read convenience."""
        with self.open(path, txn, "r", as_of=as_of) as handle:
            return handle.read()

    def write_file(self, txn: Transaction, path: str, data: bytes) -> None:
        """Create-or-replace convenience: afterwards the file contains
        exactly *data* (existing files are truncated first)."""
        snapshot = self._snapshot(txn, None)
        if self._resolve(path, snapshot) is None:
            handle = self.create(txn, path)
        else:
            handle = self.open(path, txn, "rw")
            handle.truncate(0)
        with handle:
            handle.write(data)

    # -- metadata -----------------------------------------------------------------------------

    def exists(self, path: str, txn: Transaction | None = None,
               as_of: float | None = None) -> bool:
        if not split_path(path):
            return True
        return self._resolve(path, self._snapshot(txn, as_of)) is not None

    def is_dir(self, path: str, txn: Transaction | None = None,
               as_of: float | None = None) -> bool:
        if not split_path(path):
            return True
        entry = self._resolve(path, self._snapshot(txn, as_of))
        return entry is not None and entry.is_dir

    def listdir(self, path: str = "/", txn: Transaction | None = None,
                as_of: float | None = None) -> list[str]:
        """Names in a directory, sorted."""
        snapshot = self._snapshot(txn, as_of)
        if split_path(path):
            entry = self._require(path, snapshot)
            if not entry.is_dir:
                raise NotADirectory(f"{path!r} is not a directory")
            parent_id = entry.file_id
        else:
            parent_id = ROOT_ID
        return sorted(e.name for e in self._children(parent_id, snapshot))

    def stat(self, path: str, txn: Transaction | None = None,
             as_of: float | None = None) -> dict:
        """owner/mode/times/size/kind for *path*."""
        snapshot = self._snapshot(txn, as_of)
        entry = self._require(path, snapshot)
        rows = self._rows_by_index("inv_stat_fid", entry.file_id, snapshot)
        if not rows:
            raise InversionError(f"{path!r} has no FILESTAT record")
        _fid, owner, mode, atime, mtime, ctime = rows[0].values
        size = 0
        if not entry.is_dir:
            with self.open(path, txn, "r", as_of=as_of) as handle:
                size = handle.size()
        return {"file_id": entry.file_id, "kind": entry.kind,
                "owner": owner, "mode": mode, "atime": atime,
                "mtime": mtime, "ctime": ctime, "size": size}

    def _touch_mtime(self, txn: Transaction, file_id: int) -> None:
        snapshot = self._snapshot(txn, None)
        rows = self._rows_by_index("inv_stat_fid", file_id, snapshot)
        if rows:
            values = list(rows[0].values)
            values[4] = self.db.clock.now()  # mtime
            self.db.replace(txn, FILESTAT, rows[0].tid, tuple(values))

    # -- removal / rename ---------------------------------------------------------------------------

    def unlink(self, txn: Transaction, path: str) -> None:
        """Remove a file (its historical versions stay time-travellable
        through the old DIRECTORY tuple versions)."""
        snapshot = self._snapshot(txn, None)
        entry = self._require(path, snapshot)
        if entry.is_dir:
            raise InversionError(f"{path!r} is a directory; use rmdir")
        self.db.delete(txn, DIRECTORY, entry.tid)
        for row in self._rows_by_index("inv_storage_fid", entry.file_id,
                                       snapshot):
            self.db.delete(txn, STORAGE, row.tid)
        for row in self._rows_by_index("inv_stat_fid", entry.file_id,
                                       snapshot):
            self.db.delete(txn, FILESTAT, row.tid)

    def rmdir(self, txn: Transaction, path: str) -> None:
        """Remove an empty directory."""
        snapshot = self._snapshot(txn, None)
        entry = self._require(path, snapshot)
        if not entry.is_dir:
            raise NotADirectory(f"{path!r} is not a directory")
        if self._children(entry.file_id, snapshot):
            raise DirectoryNotEmpty(f"{path!r} is not empty")
        self.db.delete(txn, DIRECTORY, entry.tid)
        for row in self._rows_by_index("inv_stat_fid", entry.file_id,
                                       snapshot):
            self.db.delete(txn, FILESTAT, row.tid)

    def rename(self, txn: Transaction, src: str, dst: str) -> None:
        """Move/rename a file or directory (one atomic tuple replace)."""
        snapshot = self._snapshot(txn, None)
        entry = self._require(src, snapshot)
        new_parent, new_name = self._parent_of(dst, snapshot)
        if self._child(new_parent, new_name, snapshot) is not None:
            raise FileExists(f"Inversion path {dst!r} already exists")
        self.db.replace(txn, DIRECTORY, entry.tid,
                        (new_name, entry.file_id, new_parent, entry.kind))

    # -- traversal ---------------------------------------------------------------------------------------

    def import_tree(self, txn: Transaction, os_path: str,
                    inv_path: str = "/") -> int:
        """Copy a real directory tree into Inversion; returns files copied.

        The inverse of exporting: the whole import is one transaction, so
        a failure imports nothing.
        """
        import os
        copied = 0
        base = os.path.abspath(os_path)
        for dirpath, dirnames, filenames in os.walk(base):
            relative = os.path.relpath(dirpath, base)
            if relative == ".":
                target_dir = inv_path.rstrip("/") or ""
            else:
                target_dir = (inv_path.rstrip("/") + "/"
                              + relative.replace(os.sep, "/"))
                if not self.exists(target_dir or "/", txn):
                    self.mkdir(txn, target_dir)
            dirnames.sort()
            for filename in sorted(filenames):
                # repro: allow(R003): import_tree copies *host* files
                # into Inversion — not an engine data path.
                with open(os.path.join(dirpath, filename), "rb") as fh:
                    data = fh.read()
                self.write_file(txn, f"{target_dir}/{filename}", data)
                copied += 1
        return copied

    def export_tree(self, inv_path: str, os_path: str,
                    txn: Transaction | None = None,
                    as_of: float | None = None) -> int:
        """Copy an Inversion tree out to a real directory; returns files.

        With ``as_of``, exports the tree *as it was* — a point-in-time
        backup straight out of the no-overwrite storage system.
        """
        import os
        os.makedirs(os_path, exist_ok=True)
        exported = 0
        for current, dirs, files in self.walk(inv_path, txn, as_of=as_of):
            relative = current[len(inv_path.rstrip("/")):].lstrip("/")
            target_dir = os.path.join(os_path, relative) if relative \
                else os_path
            os.makedirs(target_dir, exist_ok=True)
            for name in files:
                data = self.read_file(f"{current.rstrip('/')}/{name}",
                                      txn, as_of=as_of)
                # repro: allow(R003): export_tree writes *host* files —
                # not an engine data path.
                with open(os.path.join(target_dir, name), "wb") as fh:
                    fh.write(data)
                exported += 1
        return exported

    def walk(self, path: str = "/", txn: Transaction | None = None,
             as_of: float | None = None
             ) -> Iterator[tuple[str, list[str], list[str]]]:
        """Like :func:`os.walk` over the Inversion tree."""
        snapshot = self._snapshot(txn, as_of)
        if split_path(path):
            start = self._require(path, snapshot)
            if not start.is_dir:
                raise NotADirectory(f"{path!r} is not a directory")
            stack = [(path.rstrip("/") or "/", start.file_id)]
        else:
            stack = [("/", ROOT_ID)]
        while stack:
            current_path, file_id = stack.pop()
            children = self._children(file_id, snapshot)
            dirs = sorted(c.name for c in children if c.is_dir)
            files = sorted(c.name for c in children if not c.is_dir)
            yield current_path, dirs, files
            base = current_path.rstrip("/")
            for child in children:
                if child.is_dir:
                    stack.append((f"{base}/{child.name}", child.file_id))
