"""The Inversion file system: conventional files on top of large ADTs (§8)."""

from repro.inversion.file import InversionFile
from repro.inversion.filesystem import InversionFileSystem
from repro.inversion.monkey import FileMonkey, MonkeyReport

__all__ = ["InversionFileSystem", "InversionFile", "FileMonkey",
           "MonkeyReport"]
