"""The Inversion file system: conventional files on top of large ADTs (§8)."""

from repro.inversion.file import InversionFile
from repro.inversion.filesystem import InversionFileSystem

__all__ = ["InversionFileSystem", "InversionFile"]
