"""An open Inversion file handle.

Wraps the underlying large object and keeps FILESTAT honest: closing a
handle that read updates the file's access time, closing one that wrote
updates its modification time (POSIX ``atime``/``mtime`` maintenance).
Both happen only when the handle is bound to a still-active transaction —
detached snapshot reads and ``as_of`` time travel must not perturb the
history they are reading.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lo.interface import LargeObject

if TYPE_CHECKING:
    from repro.inversion.filesystem import InversionFileSystem
    from repro.txn.manager import Transaction


class InversionFile(LargeObject):
    """A file descriptor whose storage is a database large object."""

    def __init__(self, fs: "InversionFileSystem", path: str, file_id: int,
                 inner: LargeObject, txn: "Transaction | None"):
        super().__init__(inner.designator, inner.writable)
        self.fs = fs
        self.path = path
        self.file_id = file_id
        self.inner = inner
        self.txn = txn
        self._wrote = False
        self._accessed = False

    def _read_at(self, offset: int, nbytes: int) -> bytes:
        self._accessed = True
        return self.inner._read_at(offset, nbytes)

    def _write_at(self, offset: int, data: bytes) -> None:
        self.inner._write_at(offset, data)
        self._wrote = True

    def _size(self) -> int:
        return self.inner._size()

    def _truncate(self, size: int) -> None:
        self.inner._truncate(size)
        self._wrote = True

    def append(self, data: bytes) -> int:
        """Write at EOF — delegated, not inherited.

        The base-class fallback is ``seek(0, SEEK_END)`` + ``write``,
        which computes the EOF *before* any lock is taken; inheriting it
        here would silently bypass the chunked implementations' atomic
        append (EOF re-resolved under the range lock), so two appenders
        through Inversion handles could land on the same stale offset.
        """
        self._check_open()
        written = self.inner.append(data)
        if written:
            self._wrote = True
        self._pos = self.inner.tell()
        return written

    def _close(self) -> None:
        self.inner.close()
        if (self._wrote or self._accessed) and self.txn is not None \
                and self.txn.is_active:
            self.fs._file_closed(self.txn, self.file_id,
                                 self._wrote, self._accessed)
