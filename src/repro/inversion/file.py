"""An open Inversion file handle.

Wraps the underlying large object and keeps FILESTAT honest: closing a
handle that wrote updates the file's modification time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lo.interface import LargeObject

if TYPE_CHECKING:
    from repro.inversion.filesystem import InversionFileSystem
    from repro.txn.manager import Transaction


class InversionFile(LargeObject):
    """A file descriptor whose storage is a database large object."""

    def __init__(self, fs: "InversionFileSystem", path: str, file_id: int,
                 inner: LargeObject, txn: "Transaction | None"):
        super().__init__(inner.designator, inner.writable)
        self.fs = fs
        self.path = path
        self.file_id = file_id
        self.inner = inner
        self.txn = txn
        self._wrote = False

    def _read_at(self, offset: int, nbytes: int) -> bytes:
        return self.inner._read_at(offset, nbytes)

    def _write_at(self, offset: int, data: bytes) -> None:
        self.inner._write_at(offset, data)
        self._wrote = True

    def _size(self) -> int:
        return self.inner._size()

    def _truncate(self, size: int) -> None:
        self.inner._truncate(size)
        self._wrote = True

    def _close(self) -> None:
        self.inner.close()
        if self._wrote and self.txn is not None and self.txn.is_active:
            self.fs._touch_mtime(self.txn, self.file_id)
