"""FileMonkey: randomized multi-session stress for the Inversion FS.

The per-module tests pin down each layer in isolation; FileMonkey is the
designated bug-shaker for the races *between* them (ROADMAP item 4).  N
worker threads, each with its own :class:`~repro.session.Session`, drive
a weighted mix of file-system operations — create/write/append/truncate/
read/rename/unlink/mkdir/rmdir/chmod/walk — against one shared tree,
while an in-memory **oracle** tracks what the tree must contain after
every *committed* transaction.  The run is fully deterministic given its
seed (each worker draws from ``random.Random(f"{seed}:{worker}")``).

The mix also interleaves *raw* large-object operations
(``lo_create``/``lo_write``/``lo_append``/``lo_read``/``lo_truncate``)
driven straight through ``db.lo``, bypassing the FS naming layer — the
paper's §4 interface used directly.  The oracle tracks each object's
bytes by designator, and the as_of sweep replays only the objects that
existed at each commit point (a chunked object opened before its
creation instant reads as empty).

Correctness argument.  Every operation runs in its own transaction.  The
FS layer's heavyweight locks are strict 2PL, so any two transactions
whose effects conflict are ordered by lock waits; the harness serializes
*commits* under one mutex and applies each committed op to the oracle at
its commit point.  Commit order is therefore a valid serialization, and
the oracle is exact — any divergence is an engine or FS bug, not harness
noise.  Structural ops are applied to the oracle by *path* (the entry
locks serialize them); content ops are applied by *file id* captured
from the open handle, which stays correct when the path is concurrently
unlinked or renamed out from under the writer.

An operation that loses a race — deadlock victim, write-write conflict,
or a semantic error because the tree moved after the op's arguments were
chosen (``FileNotFound``, ``FileExists``, ...) — is rolled back and
counted, never applied.

The sweep at the end of a run checks three things:

1. **oracle diff** — the live tree (paths, kinds, contents, modes)
   matches the oracle exactly;
2. **integrity** — ``Database.check_integrity()`` reports nothing;
3. **as_of replay** — every recorded commit point is still readable,
   and sampled points reproduce the exact tree digest the oracle had
   at that instant (no-overwrite time travel survived the churn).

Crash injection (single-worker runs only): every ``crash_every``-th
commit is armed with ``on append pg_log: crash``, so the process "dies"
while writing the commit record.  The database is reopened from disk and
the in-doubt operation resolved by probing which oracle state — with or
without it — the recovered tree matches.  Either is a legal outcome;
anything else is a reported problem.

Failures dump the op log + seed as JSON (:meth:`MonkeyReport.dump`) so a
failing run can be replayed exactly.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
from typing import Callable

from repro.errors import (
    DeadlockError,
    DirectoryLoop,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InversionError,
    LockError,
    NotADirectory,
    ReproError,
    SimulatedCrash,
    TransactionError,
)

#: Exceptions that mean "this op lost a race or picked stale arguments" —
#: the transaction is rolled back and the op is counted, not applied.
RACE_ERRORS = (DeadlockError, LockError, TransactionError, FileExists,
               FileNotFound, NotADirectory, DirectoryNotEmpty,
               DirectoryLoop, InversionError)

#: (name, weight, needs_files, needs_dirs) — the default op mix.
DEFAULT_MIX = (
    ("create", 18), ("mkdir", 10), ("write", 14), ("append", 12),
    ("truncate", 5), ("read", 14), ("rename", 8), ("unlink", 8),
    ("rmdir", 4), ("chmod", 4), ("walk", 3),
    ("lo_create", 4), ("lo_write", 5), ("lo_append", 4),
    ("lo_read", 5), ("lo_truncate", 2),
)

#: Ops that pick an existing large-object designator as their target.
_LO_TARGET_OPS = ("lo_write", "lo_append", "lo_read", "lo_truncate")

_NAMES = tuple(f"n{i}" for i in range(8))


class OracleViolation(ReproError):
    """A committed operation's effect contradicts the oracle's state."""


class _Oracle:
    """The tree a correct Inversion FS must show after each commit.

    ``dirs``/``files`` map path → file id; ``data``/``modes`` are the
    inode table, keyed by file id.  Mutate only while holding the
    harness commit mutex.
    """

    def __init__(self) -> None:
        self.dirs: dict[str, int] = {}
        self.files: dict[str, int] = {}
        self.data: dict[int, bytes] = {}
        self.modes: dict[int, int] = {}
        self._hash_cache: dict[int, str] = {}
        #: Raw large objects, designator → bytes (never renamed, never
        #: unlinked by the mix, so existence is monotone).
        self.los: dict[str, bytes] = {}
        #: designator → index of the commit point that created it; the
        #: as_of sweep replays point *i* against exactly the objects with
        #: ``created_at <= i``.
        self.lo_created_at: dict[str, int] = {}
        self._lo_hash_cache: dict[str, str] = {}

    # -- applying committed ops ----------------------------------------------------

    def add_dir(self, path: str, fid: int, mode: int) -> None:
        if path in self.dirs or path in self.files:
            raise OracleViolation(f"mkdir committed over existing {path!r}")
        self.dirs[path] = fid
        self.modes[fid] = mode

    def add_file(self, path: str, fid: int, mode: int,
                 data: bytes) -> None:
        if path in self.dirs or path in self.files:
            raise OracleViolation(
                f"create committed over existing {path!r}")
        self.files[path] = fid
        self.modes[fid] = mode
        self.data[fid] = data
        self._hash_cache.pop(fid, None)

    def set_data(self, fid: int, data: bytes) -> None:
        """Content ops land by file id: a concurrently-unlinked file's
        write commits harmlessly against an invisible inode."""
        if fid in self.data:
            self.data[fid] = data
            self._hash_cache.pop(fid, None)

    def append_data(self, fid: int, chunk: bytes) -> None:
        if fid in self.data:
            self.data[fid] = self.data[fid] + chunk
            self._hash_cache.pop(fid, None)

    def truncate_data(self, fid: int, size: int) -> None:
        data = self.data.get(fid)
        if data is not None:
            # POSIX ftruncate: shrink cuts, grow zero-pads.
            self.data[fid] = data[:size] + bytes(max(0, size - len(data)))
            self._hash_cache.pop(fid, None)

    def set_mode(self, fid: int, mode: int) -> None:
        if fid in self.modes:
            self.modes[fid] = mode

    def unlink(self, path: str) -> None:
        fid = self.files.pop(path, None)
        if fid is None:
            raise OracleViolation(f"unlink committed on absent {path!r}")
        self.data.pop(fid, None)
        self.modes.pop(fid, None)
        self._hash_cache.pop(fid, None)

    def rmdir(self, path: str) -> None:
        if path not in self.dirs:
            raise OracleViolation(f"rmdir committed on absent {path!r}")
        prefix = path + "/"
        if any(p.startswith(prefix) for p in self.dirs) or \
                any(p.startswith(prefix) for p in self.files):
            raise OracleViolation(
                f"rmdir committed on non-empty {path!r}")
        self.modes.pop(self.dirs.pop(path), None)

    # -- raw large objects (by designator: no paths, no renames) -------------------

    def add_lo(self, designator: str, data: bytes, point: int) -> None:
        if designator in self.los:
            raise OracleViolation(
                f"lo_create committed a duplicate designator "
                f"{designator!r}")
        self.los[designator] = data
        self.lo_created_at[designator] = point

    def write_lo(self, designator: str, offset: int, data: bytes) -> None:
        """POSIX pwrite: a write past EOF zero-fills the hole."""
        old = self.los.get(designator)
        if old is None:
            raise OracleViolation(
                f"lo_write committed on absent {designator!r}")
        if not data:
            return  # a zero-byte write never extends the object
        pad = bytes(max(0, offset - len(old)))
        self.los[designator] = (old[:offset] + pad + data
                                + old[offset + len(data):])
        self._lo_hash_cache.pop(designator, None)

    def append_lo(self, designator: str, chunk: bytes) -> None:
        old = self.los.get(designator)
        if old is None:
            raise OracleViolation(
                f"lo_append committed on absent {designator!r}")
        self.los[designator] = old + chunk
        self._lo_hash_cache.pop(designator, None)

    def truncate_lo(self, designator: str, size: int) -> None:
        old = self.los.get(designator)
        if old is None:
            raise OracleViolation(
                f"lo_truncate committed on absent {designator!r}")
        self.los[designator] = (old[:size]
                                + bytes(max(0, size - len(old))))
        self._lo_hash_cache.pop(designator, None)

    def rename(self, src: str, dst: str) -> None:
        if src == dst:
            if src not in self.dirs and src not in self.files:
                raise OracleViolation(
                    f"no-op rename committed on absent {src!r}")
            return  # the FS treats same-path rename as a no-op success
        if dst in self.dirs or dst in self.files:
            raise OracleViolation(
                f"rename committed over existing {dst!r}")
        if src in self.files:
            self.files[dst] = self.files.pop(src)
            return
        if src not in self.dirs:
            raise OracleViolation(f"rename committed on absent {src!r}")
        if dst.startswith(src + "/"):
            raise OracleViolation(
                f"rename committed a cycle: {src!r} -> {dst!r}")
        prefix = src + "/"
        for table in (self.dirs, self.files):
            moved = {dst + p[len(src):]: fid
                     for p, fid in table.items() if p.startswith(prefix)}
            for p in list(table):
                if p.startswith(prefix):
                    del table[p]
            table.update(moved)
        self.dirs[dst] = self.dirs.pop(src)

    # -- digesting -----------------------------------------------------------------

    def _content_hash(self, fid: int) -> str:
        cached = self._hash_cache.get(fid)
        if cached is None:
            cached = hashlib.sha1(self.data[fid]).hexdigest()
            self._hash_cache[fid] = cached
        return cached

    def _lo_hash(self, designator: str) -> str:
        cached = self._lo_hash_cache.get(designator)
        if cached is None:
            cached = hashlib.sha1(self.los[designator]).hexdigest()
            self._lo_hash_cache[designator] = cached
        return cached

    def items(self) -> list[tuple[str, str, int, str]]:
        """Canonical (path, kind, mode, content-hash) rows, sorted.

        Raw large objects ride along as ``(designator, "lo", 0, hash)``
        rows; designators never collide with absolute paths.
        """
        rows = [(p, "d", self.modes[fid], "")
                for p, fid in self.dirs.items()]
        rows += [(p, "f", self.modes[fid], self._content_hash(fid))
                 for p, fid in self.files.items()]
        rows += [(d, "lo", 0, self._lo_hash(d)) for d in self.los]
        return sorted(rows)

    def digest(self) -> str:
        return hashlib.sha1(
            repr(self.items()).encode()).hexdigest()

    def copy(self) -> "_Oracle":
        clone = _Oracle()
        clone.dirs = dict(self.dirs)
        clone.files = dict(self.files)
        clone.data = dict(self.data)
        clone.modes = dict(self.modes)
        clone._hash_cache = dict(self._hash_cache)
        clone.los = dict(self.los)
        clone.lo_created_at = dict(self.lo_created_at)
        clone._lo_hash_cache = dict(self._lo_hash_cache)
        return clone


class MonkeyReport:
    """Everything a failing run needs to be diagnosed and replayed."""

    def __init__(self, seed: int, workers: int, ops: int):
        self.seed = seed
        self.workers = workers
        self.ops = ops
        self.committed = 0
        self.raced: dict[str, int] = {}
        self.crashes = 0
        self.problems: list[str] = []
        self.oplog: list[dict] = []
        self.commit_points = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def dump(self, path: str) -> None:
        """Write the seed + op log as JSON, for exact replay."""
        # repro: allow(R003): the failure artifact is a *host* file for
        # the test harness / CI upload — not engine block I/O.
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"seed": self.seed, "workers": self.workers,
                       "ops": self.ops, "committed": self.committed,
                       "raced": self.raced, "crashes": self.crashes,
                       "problems": self.problems, "oplog": self.oplog},
                      fh, indent=1)

    def summary(self) -> str:
        raced = sum(self.raced.values())
        return (f"FileMonkey(seed={self.seed}): {self.committed} "
                f"committed, {raced} raced, {self.crashes} crashes, "
                f"{self.commit_points} commit points, "
                f"{len(self.problems)} problems")


class FileMonkey:
    """Drive a randomized op mix against one Inversion tree and verify.

    ``db_factory`` must return a ready :class:`~repro.db.Database`; when
    ``crash_every`` is set it is also used to *reopen* the database after
    an injected crash, so it must be backed by a persistent path and
    ``workers`` must be 1.
    """

    def __init__(self, db_factory: Callable[[], "object"], *,
                 seed: int = 0, workers: int = 4, ops: int = 1000,
                 crash_every: int = 0, mix=DEFAULT_MIX,
                 max_depth: int = 3, replay_sample: int = 25,
                 lo_smgr: str | None = None):
        if crash_every and workers != 1:
            raise ValueError("crash injection needs workers=1 "
                             "(a crash kills the whole process)")
        self.db_factory = db_factory
        #: Storage manager the raw lo_create ops route through (None =
        #: the database default) — the shard stress points this at
        #: ``"sharded"`` to churn large objects across nodes.
        self.lo_smgr = lo_smgr
        self.seed = seed
        self.workers = workers
        self.ops = ops
        self.crash_every = crash_every
        self.mix = mix
        self.max_depth = max_depth
        self.replay_sample = replay_sample
        self.db = db_factory()
        self.fs = self.db.inversion
        self.oracle = _Oracle()
        self.report = MonkeyReport(seed, workers, ops)
        self._mutex = threading.Lock()
        self._budget = ops
        self._commit_attempts = 0
        #: (as_of time, oracle digest) per committed op, in commit order.
        self._points: list[tuple[float, str]] = []
        #: Full oracle rows per commit point (keep_items=True), so a
        #: replay mismatch can say *which* paths diverged, not just that
        #: a digest did.
        self.keep_items = False
        self._point_items: list[list] = []
        self._stop = False

    # -- op argument selection (under the mutex: reads oracle state) ---------------

    def _pick_dir(self, rng: random.Random) -> str:
        dirs = ["/"] + sorted(self.oracle.dirs)
        return rng.choice(dirs)

    def _pick_file(self, rng: random.Random) -> str | None:
        files = sorted(self.oracle.files)
        return rng.choice(files) if files else None

    def _pick_lo(self, rng: random.Random) -> str | None:
        los = sorted(self.oracle.los)
        return rng.choice(los) if los else None

    def _new_path(self, rng: random.Random) -> str:
        base = self._pick_dir(rng)
        name = rng.choice(_NAMES)
        path = f"{base.rstrip('/')}/{name}"
        return path if len(path.split("/")) - 1 <= self.max_depth \
            else f"/{name}"

    def _payload(self, rng: random.Random) -> bytes:
        # Mostly small, occasionally multi-chunk so content writes cross
        # chunk boundaries and exercise the range locks.
        size = rng.choice((0, 17, 100, 700, 3000, 9000))
        return bytes(rng.getrandbits(8) for _ in range(min(size, 64))) \
            * (1 if size <= 64 else size // 64)

    def _choose(self, rng: random.Random) -> tuple[str, dict]:
        with self._mutex:
            names = [name for name, _w in self.mix]
            weights = [w for _n, w in self.mix]
            while True:
                op = rng.choices(names, weights)[0]
                if op in ("write", "append", "truncate", "read",
                          "chmod"):
                    path = self._pick_file(rng)
                    if path is None:
                        continue
                    args = {"path": path}
                    if op in ("write", "append"):
                        args["data"] = self._payload(rng)
                    elif op == "truncate":
                        args["size"] = rng.randrange(0, 4096)
                    elif op == "chmod":
                        args["mode"] = rng.choice(
                            (0o600, 0o640, 0o644, 0o755))
                    return op, args
                if op == "lo_create":
                    return op, {"data": self._payload(rng)}
                if op in _LO_TARGET_OPS:
                    des = self._pick_lo(rng)
                    if des is None:
                        continue
                    args = {"des": des}
                    if op == "lo_write":
                        # Offsets may land past EOF: POSIX pwrite
                        # zero-fills the hole, and so must the engine.
                        args["offset"] = rng.randrange(
                            0, len(self.oracle.los[des]) + 256)
                        args["data"] = self._payload(rng)
                    elif op == "lo_append":
                        args["data"] = self._payload(rng)
                    elif op == "lo_truncate":
                        args["size"] = rng.randrange(0, 4096)
                    return op, args
                if op in ("create", "mkdir"):
                    return op, {"path": self._new_path(rng),
                                "data": self._payload(rng)}
                if op == "unlink":
                    path = self._pick_file(rng)
                    if path is None:
                        continue
                    return op, {"path": path}
                if op == "rmdir":
                    dirs = sorted(self.oracle.dirs)
                    if not dirs:
                        continue
                    return op, {"path": rng.choice(dirs)}
                if op == "rename":
                    src = (self._pick_file(rng) if rng.random() < 0.7
                           else None)
                    if src is None:
                        dirs = sorted(self.oracle.dirs)
                        if not dirs:
                            continue
                        src = rng.choice(dirs)
                    return op, {"src": src, "dst": self._new_path(rng)}
                return "walk", {}

    # -- op execution (outside the mutex; returns an oracle applier) ---------------

    def _execute(self, session, rng: random.Random, op: str,
                 args: dict) -> Callable[[], None] | None:
        """Run *op* in ``session``'s open transaction.

        Returns the closure that applies the op to the oracle once the
        commit succeeds.  Every large-object handle is closed *here*, so
        the later commit (held under the harness mutex) never blocks on
        a lock — a handle flushed at commit time could deadlock the
        harness against the lock manager.
        """
        fs, txn = self.fs, session.txn
        if op == "mkdir":
            fid = fs.mkdir(txn, args["path"])
            return lambda: self.oracle.add_dir(args["path"], fid, 0o755)
        if op == "create":
            with fs.create(txn, args["path"]) as handle:
                handle.write(args["data"])
                fid = handle.file_id
            return lambda: self.oracle.add_file(
                args["path"], fid, 0o644, args["data"])
        if op == "write":
            with fs.open(args["path"], txn, "rw") as handle:
                handle.truncate(0)
                handle.write(args["data"])
                fid = handle.file_id
            return lambda: self.oracle.set_data(fid, args["data"])
        if op == "append":
            # handle.append, not seek(END)+write: only the former
            # re-resolves the EOF under the range lock.
            with fs.open(args["path"], txn, "rw") as handle:
                handle.append(args["data"])
                fid = handle.file_id
            return lambda: self.oracle.append_data(fid, args["data"])
        if op == "truncate":
            with fs.open(args["path"], txn, "rw") as handle:
                handle.truncate(args["size"])
                fid = handle.file_id
            return lambda: self.oracle.truncate_data(fid, args["size"])
        if op == "read":
            with fs.open(args["path"], txn, "r") as handle:
                data = handle.read()
                fid = handle.file_id
            if self.workers == 1:
                expected = self.oracle.data.get(fid)
                if expected is not None and data != expected:
                    raise OracleViolation(
                        f"read {args['path']!r}: got {len(data)} bytes, "
                        f"oracle has {len(expected)}")
            return lambda: None
        if op == "chmod":
            # chmod reports which inode it stat-locked: attributing the
            # oracle update by a path lookup instead raced with renames
            # committed between execute and this op's own commit.
            fid = fs.chmod(txn, args["path"], args["mode"])
            return lambda: self.oracle.set_mode(fid, args["mode"])
        if op == "unlink":
            fs.unlink(txn, args["path"])
            return lambda: self.oracle.unlink(args["path"])
        if op == "rmdir":
            fs.rmdir(txn, args["path"])
            return lambda: self.oracle.rmdir(args["path"])
        if op == "rename":
            fs.rename(txn, args["src"], args["dst"])
            return lambda: self.oracle.rename(args["src"], args["dst"])
        if op == "lo_create":
            des = self.db.lo.create(txn, impl="fchunk",
                                    smgr=self.lo_smgr)
            with self.db.lo.open(des, txn, "rw") as obj:
                obj.write(args["data"])
            # len(self._points) at apply time is the index of the commit
            # point about to be recorded for this very op.
            return lambda: self.oracle.add_lo(
                des, args["data"], len(self._points))
        if op == "lo_write":
            with self.db.lo.open(args["des"], txn, "rw") as obj:
                obj.seek(args["offset"])
                obj.write(args["data"])
            return lambda: self.oracle.write_lo(
                args["des"], args["offset"], args["data"])
        if op == "lo_append":
            with self.db.lo.open(args["des"], txn, "rw") as obj:
                obj.append(args["data"])
            return lambda: self.oracle.append_lo(
                args["des"], args["data"])
        if op == "lo_truncate":
            with self.db.lo.open(args["des"], txn, "rw") as obj:
                obj.truncate(args["size"])
            return lambda: self.oracle.truncate_lo(
                args["des"], args["size"])
        if op == "lo_read":
            with self.db.lo.open(args["des"], txn, "r") as obj:
                data = obj.read()
            if self.workers == 1:
                expected = self.oracle.los.get(args["des"])
                if expected is not None and data != expected:
                    raise OracleViolation(
                        f"lo_read {args['des']!r}: got {len(data)} "
                        f"bytes, oracle has {len(expected)}")
            return lambda: None
        for _ in fs.walk("/", txn):
            pass
        return lambda: None

    # -- the worker loop -----------------------------------------------------------

    def _log(self, wid: int, op: str, args: dict, outcome: str) -> None:
        entry = {"w": wid, "op": op, "outcome": outcome}
        entry.update({k: (v if not isinstance(v, bytes)
                          else f"<{len(v)}B>") for k, v in args.items()})
        self.report.oplog.append(entry)

    def _worker(self, wid: int) -> None:
        rng = random.Random(f"{self.seed}:{wid}")
        session = self.db.session()
        while not self._stop:
            with self._mutex:
                if self._budget <= 0:
                    break
                self._budget -= 1
            op, args = self._choose(rng)
            try:
                session.begin()
                apply = self._execute(session, rng, op, args)
            except RACE_ERRORS as exc:
                if session.in_transaction:
                    session.rollback()
                with self._mutex:
                    kind = type(exc).__name__
                    self.report.raced[kind] = \
                        self.report.raced.get(kind, 0) + 1
                    self._log(wid, op, args, f"raced:{kind}")
                continue
            except OracleViolation as exc:
                if session.in_transaction:
                    session.rollback()
                with self._mutex:
                    self.report.problems.append(str(exc))
                    self._log(wid, op, args, "VIOLATION")
                self._stop = True
                break
            with self._mutex:
                # Pace crashes by commit *attempt*, not by commits landed:
                # a crashed op is usually lost, so keying off
                # ``report.committed`` would re-arm the same count forever.
                self._commit_attempts += 1
                crash_now = (self.crash_every
                             and self._commit_attempts
                             % self.crash_every == 0)
                try:
                    if crash_now:
                        self.db.inject_faults("on append pg_log: crash")
                    session.commit()
                except SimulatedCrash:
                    self._log(wid, op, args, "crashed")
                    session = self._recover(apply)
                    continue
                except RACE_ERRORS as exc:
                    session.rollback()
                    kind = type(exc).__name__
                    self.report.raced[kind] = \
                        self.report.raced.get(kind, 0) + 1
                    self._log(wid, op, args, f"raced:{kind}")
                    continue
                finally:
                    if crash_now:
                        self.db.clear_faults()
                try:
                    apply()
                except OracleViolation as exc:
                    self.report.problems.append(str(exc))
                    self._log(wid, op, args, "VIOLATION")
                    self._stop = True
                    break
                self.report.committed += 1
                self._log(wid, op, args, "ok")
                self._record_point()
        session.close()

    def _record_point(self) -> None:
        self._points.append((self.db.clock.now(), self.oracle.digest()))
        if self.keep_items:
            self._point_items.append(self.oracle.items())

    def _recover(self, apply: Callable[[], None]):
        """Reopen after an injected crash and resolve the in-doubt op.

        The crash hit while the commit record was being written, so the
        op either fully committed or fully aborted; the recovered tree
        tells us which, and the oracle follows it.
        """
        self.report.crashes += 1
        self.db = self.db_factory()
        self.fs = self.db.inversion
        if self._points:
            # The reopened simulated clock restarts near zero; push it
            # past every timestamp already handed out so commit order
            # and as_of replay stay monotone across the crash.
            self.db.clock.advance(self._points[-1][0] + 1.0, "other")
        without = self.oracle.digest()
        attempt = self.oracle.copy()
        saved, self.oracle = self.oracle, attempt
        try:
            # The apply closure mutates whatever self.oracle points at,
            # so aim it at the copy to compute the "op made it" state.
            apply()
            attempt_digest = attempt.digest()
        except OracleViolation:
            attempt_digest = None
        finally:
            self.oracle = saved
        # Probe the attempt's designator set (a superset of saved's): an
        # in-doubt lo_create's object is only visible if its designator
        # is among the candidates.
        actual = self._tree_digest(lo_candidates=attempt.lo_created_at)
        if actual == without:
            pass  # the crash beat the commit record: op lost
        elif attempt_digest is not None and actual == attempt_digest:
            self.oracle = attempt  # the record made it out first
            self.report.committed += 1
        else:
            self.report.problems.append(
                "post-crash tree matches neither oracle state "
                "(in-doubt op resolved to nonsense)")
            self._stop = True
        self._record_point()
        return self.db.session()

    # -- sweeps --------------------------------------------------------------------

    def _lo_items(self, as_of: float | None = None,
                  lo_point: int | None = None,
                  lo_candidates: dict[str, int] | None = None
                  ) -> list[tuple[str, str, int, str]]:
        """(designator, "lo", 0, hash) rows read back from the engine.

        Candidates default to every designator the oracle ever saw
        created; ``lo_point`` keeps only objects whose creating commit is
        at or before that commit-point index (for as_of replay — a
        chunked object opened before its creation reads empty, which
        must not leak into the digest).  Live probes skip designators the
        engine no longer has, so a loss shows up as an oracle diff.
        """
        if lo_candidates is None:
            lo_candidates = self.oracle.lo_created_at
        rows: list[tuple[str, str, int, str]] = []
        for des, created in sorted(lo_candidates.items()):
            if lo_point is not None and created > lo_point:
                continue
            if as_of is None and not self.db.lo.exists(des):
                continue
            try:
                with self.db.lo.open(des, None, "r", as_of=as_of) as obj:
                    data = obj.read()
            except ReproError:
                continue
            rows.append((des, "lo", 0,
                         hashlib.sha1(data).hexdigest()))
        return rows

    def _tree_items(self, as_of: float | None = None,
                    lo_point: int | None = None,
                    lo_candidates: dict[str, int] | None = None
                    ) -> list[tuple[str, str, int, str]]:
        rows: list[tuple[str, str, int, str]] = []
        for current, dirs, files in self.fs.walk("/", as_of=as_of):
            base = current.rstrip("/")
            for name in dirs:
                path = f"{base}/{name}"
                rows.append((path, "d",
                             self.fs.stat(path, as_of=as_of)["mode"], ""))
            for name in files:
                path = f"{base}/{name}"
                data = self.fs.read_file(path, as_of=as_of)
                rows.append((path, "f",
                             self.fs.stat(path, as_of=as_of)["mode"],
                             hashlib.sha1(data).hexdigest()))
        rows.extend(self._lo_items(as_of, lo_point, lo_candidates))
        return sorted(rows)

    def _tree_digest(self, as_of: float | None = None,
                     lo_point: int | None = None,
                     lo_candidates: dict[str, int] | None = None) -> str:
        return hashlib.sha1(
            repr(self._tree_items(as_of, lo_point,
                                  lo_candidates)).encode()).hexdigest()

    def _sweep(self) -> None:
        tree = self._tree_items()
        want = self.oracle.items()
        if tree != want:
            missing = sorted(set(want) - set(tree))[:5]
            extra = sorted(set(tree) - set(want))[:5]
            self.report.problems.append(
                f"oracle diff: {len(want)} expected vs {len(tree)} "
                f"found; missing={missing} extra={extra}")
        problems = self.db.check_integrity()
        for problem in problems:
            self.report.problems.append(f"integrity: {problem}")
        self.report.commit_points = len(self._points)
        for i, (t, digest) in enumerate(self._points):
            try:
                self.fs.listdir("/", as_of=t)
            except ReproError as exc:
                self.report.problems.append(
                    f"as_of replay: commit point {i} unreadable: {exc}")
                continue
            if i % self.replay_sample == 0 or i == len(self._points) - 1:
                found = self._tree_digest(as_of=t, lo_point=i)
                if found != digest:
                    self.report.problems.append(
                        f"as_of replay: commit point {i} (t={t}) does "
                        f"not reproduce the oracle's tree")

    # -- entry point ---------------------------------------------------------------

    def run(self) -> MonkeyReport:
        """Run the full stress round; returns the report (check ``ok``)."""
        threads = [threading.Thread(target=self._worker, args=(wid,),
                                    name=f"monkey-{wid}", daemon=True)
                   for wid in range(self.workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        self._sweep()
        return self.report
