"""A multi-client server front-end over one shared Database.

The paper's large-object interface was exercised through the POSTGRES
server process: many clients, one backend per connection, all sharing
the buffer pool, lock manager, and commit log.  This package supplies
that missing process boundary for the reproduction:

* :mod:`repro.server.protocol` — a tiny length-prefixed wire format
  (JSON header + raw binary body, so ``lo_read``/``lo_write`` payloads
  never pass through text encoding);
* :mod:`repro.server.server` — :class:`ReproServer`, a threaded socket
  server mapping one connection to one :class:`~repro.session.Session`;
* :mod:`repro.server.client` — :class:`ServerClient`, the blocking
  client used by tests, examples, and interactive sessions;
* :mod:`repro.server.cli` — the ``repro-server`` console entry point.

Concurrency comes from the engine, not the server: connection threads
call straight into the shared :class:`~repro.db.Database`, and the
range-granular lock manager (``txn/rangelock.py``) is what lets two
connections write disjoint ranges of one large object in parallel.
"""

from repro.server.client import ServerClient
from repro.server.server import ReproServer

__all__ = ["ReproServer", "ServerClient"]
