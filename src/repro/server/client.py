"""``ServerClient``: the blocking client half of the repro protocol.

One :class:`ServerClient` is one connection is one server-side
:class:`~repro.session.Session`.  Calls block until the server
replies; an ``ok: false`` reply re-raises the server-side exception
class (looked up by name in :mod:`repro.errors`) with the original
message, so ``except DeadlockError: rollback-and-retry`` loops work
unchanged against a remote server.

>>> from repro.db import Database
>>> from repro.server import ReproServer, ServerClient
>>> db = Database()
>>> with ReproServer(db) as server:
...     with ServerClient(*server.address) as c:
...         c.begin()
...         lo = c.lo_create("fchunk")
...         fd = c.lo_open(lo, "rw")
...         _ = c.lo_write(fd, b"hello, inversion")
...         c.lo_close(fd)
...         c.commit()
...         c.begin()
...         fd = c.lo_open(lo)
...         data = c.lo_read(fd, 5)
...         c.rollback()
>>> data
b'hello'
>>> db.close()
"""

from __future__ import annotations

import socket

from repro import errors
from repro.errors import ReproError
from repro.server import protocol


class ServerClient:
    """A blocking connection to a :class:`~repro.server.ReproServer`."""

    def __init__(self, host: str, port: int, timeout: float | None = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- plumbing ----------------------------------------------------------------

    def _call(self, cmd: str, body: bytes = b"",
              **fields) -> tuple[dict, bytes]:
        """One request/reply round trip; raises the mapped engine error."""
        protocol.send_message(self._sock, {"cmd": cmd, **fields}, body)
        header, reply_body = protocol.recv_message(self._sock)
        if header.get("ok"):
            return header, reply_body
        raise self._map_error(header)

    @staticmethod
    def _map_error(header: dict) -> ReproError:
        name = header.get("error", "ReproError")
        message = header.get("message", "server error")
        if name == "ProtocolError":
            return protocol.ProtocolError(message)
        cls = getattr(errors, name, None)
        if not (isinstance(cls, type) and issubclass(cls, ReproError)):
            cls = ReproError
        return cls(message)

    # -- connection --------------------------------------------------------------

    def ping(self) -> bool:
        header, _ = self._call("ping")
        return bool(header.get("pong"))

    def stats(self) -> dict:
        """The server database's ``statistics()`` snapshot."""
        header, _ = self._call("stats")
        return header["stats"]

    def close(self) -> None:
        """End the connection (rolls back any open transaction)."""
        if self._sock is None:
            return
        try:
            self._call("close")
        except (ReproError, OSError):
            pass  # best effort: the server rolls back on EOF anyway
        try:
            self._sock.close()
        finally:
            self._sock = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- transactions ------------------------------------------------------------

    def begin(self) -> int:
        """Start this connection's transaction; returns its xid."""
        header, _ = self._call("begin")
        return header["xid"]

    def commit(self) -> None:
        self._call("commit")

    def rollback(self) -> None:
        self._call("rollback")

    # -- queries -----------------------------------------------------------------

    def execute(self, query: str) -> dict:
        """Run a mini-POSTQUEL statement; returns a plain-dict result.

        Keys mirror :class:`~repro.ql.executor.QueryResult`:
        ``columns``, ``rows`` (tuples, ``bytes`` values restored),
        ``count``, ``temporaries``.
        """
        header, _ = self._call("execute", query=query)
        return {
            "columns": header["columns"],
            "rows": protocol.decode_rows(header["rows"]),
            "count": header["count"],
            "temporaries": set(header["temporaries"]),
        }

    # -- large objects -----------------------------------------------------------

    def lo_create(self, impl: str = "fchunk",
                  compression: str = "none",
                  smgr: str | None = None) -> str:
        header, _ = self._call("lo_create", impl=impl,
                               compression=compression, smgr=smgr)
        return header["designator"]

    def lo_unlink(self, designator: str) -> None:
        self._call("lo_unlink", designator=designator)

    def lo_open(self, designator: str, mode: str = "r") -> int:
        header, _ = self._call("lo_open", designator=designator, mode=mode)
        return header["fd"]

    def lo_close(self, fd: int) -> None:
        self._call("lo_close", fd=fd)

    def lo_read(self, fd: int, nbytes: int = -1) -> bytes:
        _, body = self._call("lo_read", fd=fd, nbytes=nbytes)
        return body

    def lo_write(self, fd: int, data: bytes) -> int:
        header, _ = self._call("lo_write", bytes(data), fd=fd)
        return header["nbytes"]

    def lo_append(self, fd: int, data: bytes) -> int:
        """EOF-stable append (lands exactly once under concurrency)."""
        header, _ = self._call("lo_append", bytes(data), fd=fd)
        return header["nbytes"]

    def lo_seek(self, fd: int, offset: int, whence: int = 0) -> int:
        header, _ = self._call("lo_seek", fd=fd, offset=offset,
                               whence=whence)
        return header["pos"]

    def lo_tell(self, fd: int) -> int:
        header, _ = self._call("lo_tell", fd=fd)
        return header["pos"]

    def lo_size(self, fd: int) -> int:
        header, _ = self._call("lo_size", fd=fd)
        return header["size"]

    def lo_truncate(self, fd: int, size: int | None = None) -> int:
        header, _ = self._call("lo_truncate", fd=fd, size=size)
        return header["size"]
