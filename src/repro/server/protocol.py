"""The repro wire protocol: length-prefixed JSON header + binary body.

Every message — request or response — is one frame::

    +----------------+----------------+----------------+-----------+
    | header length  | body length    | header (JSON)  | body      |
    | uint32, BE     | uint32, BE     | UTF-8          | raw bytes |
    +----------------+----------------+----------------+-----------+

The JSON header carries the command (or reply fields); the body carries
bulk large-object data so ``lo_read``/``lo_write`` payloads move as raw
bytes instead of being base64-inflated inside JSON.  Small binary
values that *do* appear inside headers (query result rows may contain
``bytes``) are tagged: ``{"__b64__": "<base64>"}``.

Responses always carry ``"ok"``: ``true`` plus reply fields on
success, ``false`` plus ``"error"`` (exception class name) and
``"message"`` on failure.  :mod:`repro.server.client` maps error names
back onto the :mod:`repro.errors` hierarchy.
"""

from __future__ import annotations

import base64
import json
import socket
import struct

from repro.errors import ReproError

#: Frame prefix: header length, body length (both unsigned 32-bit BE).
_PREFIX = struct.Struct("!II")

#: Upper bound on either frame part — a corrupted prefix otherwise asks
#: ``recv`` for gigabytes.  64 MiB comfortably covers the test corpus.
MAX_PART = 64 << 20


class ProtocolError(ReproError):
    """The peer sent a malformed or oversized frame."""


def send_message(sock: socket.socket, header: dict,
                 body: bytes = b"") -> None:
    """Serialize *header*/*body* into one frame and send it."""
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_PART or len(body) > MAX_PART:
        raise ProtocolError(
            f"frame part too large ({len(raw)}/{len(body)} bytes, "
            f"max {MAX_PART})")
    sock.sendall(_PREFIX.pack(len(raw), len(body)) + raw + body)


def recv_message(sock: socket.socket) -> tuple[dict, bytes]:
    """Read one frame; returns ``(header, body)``.

    Raises :class:`ConnectionError` (via :func:`recv_exact`) when the
    peer hangs up cleanly between frames, :class:`ProtocolError` on a
    malformed frame.
    """
    prefix = recv_exact(sock, _PREFIX.size)
    header_len, body_len = _PREFIX.unpack(prefix)
    if header_len > MAX_PART or body_len > MAX_PART:
        raise ProtocolError(
            f"frame prefix claims {header_len}/{body_len} bytes "
            f"(max {MAX_PART}) — stream out of sync?")
    try:
        header = json.loads(recv_exact(sock, header_len))
    except ValueError as exc:
        raise ProtocolError(f"bad frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got {type(header).__name__}")
    return header, recv_exact(sock, body_len)


def recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    """Read exactly *nbytes*; raises ``ConnectionError`` on EOF."""
    parts = []
    remaining = nbytes
    while remaining:
        piece = sock.recv(min(remaining, 1 << 20))
        if not piece:
            raise ConnectionError(
                f"peer closed mid-frame ({nbytes - remaining}/{nbytes} "
                f"bytes received)")
        parts.append(piece)
        remaining -= len(piece)
    return b"".join(parts)


# -- bytes-in-JSON tagging (query result rows may contain bytes) ------------------


def encode_value(value):
    """JSON-safe form of one result value (bytes become a b64 tag)."""
    if isinstance(value, bytes):
        return {"__b64__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    return value


def decode_value(value):
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict) and "__b64__" in value:
        return base64.b64decode(value["__b64__"])
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def encode_rows(rows: list[tuple]) -> list[list]:
    return [[encode_value(v) for v in row] for row in rows]


def decode_rows(rows: list[list]) -> list[tuple]:
    return [tuple(decode_value(v) for v in row) for row in rows]
