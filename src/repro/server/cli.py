"""The ``repro-server`` console entry point.

Serve one database over the repro wire protocol::

    repro-server                      # in-memory database, OS-picked port
    repro-server --port 5435          # fixed port
    repro-server --path ./data        # persistent database directory

The process runs until interrupted (Ctrl-C); every connected client's
open transaction is rolled back on shutdown, exactly as if the client
had disconnected.
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.db import Database
from repro.server.server import ReproServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve a repro database to multiple socket clients.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to bind (default: 0 = OS-picked)")
    parser.add_argument("--path", default=None,
                        help="database directory (default: in-memory)")
    parser.add_argument("--pool-size", type=int, default=256,
                        help="buffer pool size in pages (default: 256)")
    args = parser.parse_args(argv)

    db = Database(path=args.path, pool_size=args.pool_size,
                  charge_cpu=False)
    server = ReproServer(db, host=args.host, port=args.port)
    host, port = server.start()
    print(f"repro-server listening on {host}:{port}", flush=True)
    try:
        # Nothing to do on the main thread: connection threads carry the
        # work.  Park until the user interrupts.
        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.stop()
        db.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
