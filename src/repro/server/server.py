"""``ReproServer``: one connection, one session, one shared engine.

The threaded server maps each accepted socket to a daemon thread
running :meth:`ReproServer._serve_connection`, which owns exactly one
:class:`~repro.session.Session`.  Every connection thread calls into
the same shared :class:`~repro.db.Database`; isolation and mutual
exclusion come from the engine's lock manager and MVCC, not from any
serialization in the server.  In particular, two connections writing
disjoint byte ranges of one large object run genuinely in parallel
under the range-granular write locks (``txn/rangelock.py``), while
overlapping writers block each other — exactly the behaviour the
in-process threaded tests exercise, now across a process boundary.

Failure handling mirrors a real backend: an engine error aborts only
the offending *command* (the client receives ``ok: false`` with the
exception class name and may retry or roll back); a vanished client
rolls back its open transaction via ``Session.close()``.
"""

from __future__ import annotations

import socket
import threading
from typing import TYPE_CHECKING

from repro.errors import LargeObjectError, ReproError
from repro.server import protocol
from repro.session import Session
from repro.txn.lockdep import LockdepMutex

if TYPE_CHECKING:
    from repro.db import Database
    from repro.lo.interface import LargeObject


class ReproServer:
    """A threaded socket front-end over one :class:`~repro.db.Database`.

    >>> from repro.db import Database
    >>> from repro.server import ReproServer, ServerClient
    >>> db = Database()
    >>> with ReproServer(db) as server:
    ...     with ServerClient(*server.address) as client:
    ...         client.ping()
    True
    >>> db.close()

    Port 0 (the default) lets the OS pick a free port; read the bound
    address from :attr:`address` after :meth:`start`.  Entering the
    context manager starts the server; leaving it stops it (the
    database itself stays open — the caller owns it).
    """

    def __init__(self, db: "Database", host: str = "127.0.0.1",
                 port: int = 0):
        self.db = db
        self.host = host
        self.port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._conn_lock = LockdepMutex("mutex:server")
        self._connections: dict[int, socket.socket] = {}
        self._conn_threads: list[threading.Thread] = []
        self._next_conn = 0

    # -- lifecycle ---------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound; valid after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> tuple[str, int]:
        """Bind, listen, and spawn the accept loop; returns the address."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        self._listener = listener
        self._stopping.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept",
            daemon=True)
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        """Close the listener and every live connection; join threads."""
        if self._listener is None:
            return
        self._stopping.set()
        listener, self._listener = self._listener, None
        listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10.0)
            self._accept_thread = None
        with self._conn_lock:
            live = list(self._connections.values())
        for conn in live:
            # Shutdown wakes the handler's blocking recv; its finally
            # block rolls back the session and closes the socket.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        for thread in self._conn_threads:
            thread.join(timeout=10.0)
        self._conn_threads = []

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- accept / serve ----------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:  # listener closed by stop()
                return
            with self._conn_lock:
                conn_id = self._next_conn
                self._next_conn += 1
                self._connections[conn_id] = conn
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn, conn_id),
                    name=f"repro-server-conn-{conn_id}", daemon=True)
                self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, conn_id: int) -> None:
        """Run one connection's command loop until EOF or ``close``."""
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        session = Session(self.db)
        handles: dict[int, LargeObject] = {}
        next_fd = [1]
        try:
            while not self._stopping.is_set():
                try:
                    header, body = protocol.recv_message(conn)
                except (ConnectionError, OSError):
                    return  # client hung up; finally rolls back
                if not self._dispatch(conn, session, handles, next_fd,
                                      header, body):
                    return
        finally:
            session.close()  # aborts any open transaction
            try:
                conn.close()
            except OSError:
                pass
            with self._conn_lock:
                self._connections.pop(conn_id, None)

    def _dispatch(self, conn: socket.socket, session: Session,
                  handles: dict, next_fd: list, header: dict,
                  body: bytes) -> bool:
        """Run one command; returns False when the connection should end."""
        cmd = header.get("cmd")
        try:
            if cmd == "close":
                protocol.send_message(conn, {"ok": True})
                return False
            reply, reply_body = self._run_command(
                session, handles, next_fd, cmd, header, body)
            protocol.send_message(conn, {"ok": True, **reply}, reply_body)
        except ReproError as exc:
            # Engine errors fail the command, not the connection: the
            # client decides whether to retry, roll back, or give up
            # (a DeadlockError victim *must* roll back).
            try:
                protocol.send_message(conn, {
                    "ok": False,
                    "error": type(exc).__name__,
                    "message": str(exc),
                })
            except OSError:
                return False
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # Malformed request or dead socket: report if we can, then
            # drop the connection — the stream may be out of sync.
            try:
                protocol.send_message(conn, {
                    "ok": False,
                    "error": "ProtocolError",
                    "message": f"{type(exc).__name__}: {exc}",
                })
            except OSError:
                pass
            return False
        return True

    # -- commands ----------------------------------------------------------------

    def _run_command(self, session: Session, handles: dict,
                     next_fd: list, cmd: str, header: dict,
                     body: bytes) -> tuple[dict, bytes]:
        """Execute one request; returns ``(reply_fields, reply_body)``."""
        if cmd == "ping":
            return {"pong": True}, b""

        if cmd == "begin":
            # repro: allow(R005): the transaction spans many commands by
            # design; _serve_connection's finally (session.close) aborts
            # it if the client vanishes without commit/rollback.
            txn = session.begin()
            return {"xid": txn.xid}, b""
        if cmd == "commit":
            handles.clear()  # commit closes every descriptor
            session.commit()
            return {}, b""
        if cmd == "rollback":
            handles.clear()
            session.rollback()
            return {}, b""

        if cmd == "execute":
            result = session.execute(header["query"])
            return {
                "columns": result.columns,
                "rows": protocol.encode_rows(result.rows),
                "count": result.count,
                "temporaries": sorted(result.temporaries),
            }, b""

        if cmd == "lo_create":
            designator = session.lo_create(
                header.get("impl", "fchunk"),
                smgr=header.get("smgr"),
                compression=header.get("compression", "none"))
            return {"designator": designator}, b""
        if cmd == "lo_unlink":
            session.lo_unlink(header["designator"])
            return {}, b""
        if cmd == "lo_open":
            handle = session.lo_open(header["designator"],
                                     header.get("mode", "r"))
            fd = next_fd[0]
            next_fd[0] += 1
            handles[fd] = handle
            return {"fd": fd}, b""

        if cmd == "stats":
            return {"stats": self.db.statistics()}, b""

        # Everything below addresses an open descriptor.
        handle = handles.get(header.get("fd"))
        if handle is None:
            raise LargeObjectError(
                f"bad large-object descriptor {header.get('fd')!r} "
                f"(command {cmd!r})")
        if cmd == "lo_read":
            return {}, handle.read(header.get("nbytes", -1))
        if cmd == "lo_write":
            return {"nbytes": handle.write(body)}, b""
        if cmd == "lo_append":
            return {"nbytes": handle.append(body)}, b""
        if cmd == "lo_seek":
            return {"pos": handle.seek(header["offset"],
                                       header.get("whence", 0))}, b""
        if cmd == "lo_tell":
            return {"pos": handle.tell()}, b""
        if cmd == "lo_size":
            return {"size": handle.size()}, b""
        if cmd == "lo_truncate":
            return {"size": handle.truncate(header.get("size"))}, b""
        if cmd == "lo_close":
            handle.close()
            handles.pop(header["fd"], None)
            return {}, b""

        raise ReproError(f"unknown command {cmd!r}")
