"""CPU-cost accounting for compression.

§9.2 of the paper prices its algorithms in instructions per byte: "one
achieved 30 % compression on 4096-byte frames, at an average cost of eight
instructions per byte.  A second algorithm achieved 50 % compression,
consuming 20 instructions per byte."  Whether compression pays off is then
a race between those instructions and the I/O they save — visible in
Figures 2 and 3.

:class:`CostedCompressor` wraps any real compressor and charges the stated
instruction budget (per *uncompressed* byte, both directions) to the
simulation clock, on top of doing the real work.
"""

from __future__ import annotations

from repro.compress.base import Compressor
from repro.sim.clock import SimClock
from repro.sim.devices import CpuModel


class CostedCompressor(Compressor):
    """A compressor that also bills simulated CPU time."""

    def __init__(self, inner: Compressor, instructions_per_byte: float,
                 cpu: CpuModel, clock: SimClock):
        self.inner = inner
        self.instructions_per_byte = instructions_per_byte
        self.cpu = cpu
        self.clock = clock
        self.name = f"{inner.name}@{instructions_per_byte:g}ipb"
        self.bytes_compressed = 0
        self.bytes_decompressed = 0

    def compress(self, data: bytes) -> bytes:
        # Delegate BEFORE charging: if the inner compressor raises, no
        # cost may stick — a caller retrying after the failure would be
        # billed twice for one unit of work.  (The charge amount does not
        # depend on ordering, so successful calls are priced the same.)
        image = self.inner.compress(data)
        self.bytes_compressed += len(data)
        self.cpu.charge(self.clock,
                        self.instructions_per_byte * len(data))
        return image

    def decompress(self, data: bytes) -> bytes:
        out = self.inner.decompress(data)
        self.bytes_decompressed += len(out)
        self.cpu.charge(self.clock,
                        self.instructions_per_byte * len(out))
        return out
