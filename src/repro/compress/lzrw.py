"""Dictionary compression via :mod:`zlib` (DEFLATE).

The paper's tailored compression algorithms are long gone; DEFLATE stands
in as the "good but expensive" end of the spectrum.  Wrapped with the
store-raw fallback so adversarial inputs still round-trip with bounded
expansion.
"""

from __future__ import annotations

import zlib

from repro.compress.base import Compressor, register_compressor
from repro.errors import CompressionError

_RAW = 0x00
_DEFLATE = 0x02


class ZlibCompressor(Compressor):
    """DEFLATE with a 1-byte method header and raw fallback."""

    name = "zlib"

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise CompressionError(f"zlib level {level} out of range 1..9")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        data = bytes(data)
        packed = zlib.compress(data, self.level)
        if len(packed) + 1 >= len(data) + 1:
            return bytes([_RAW]) + data
        return bytes([_DEFLATE]) + packed

    def decompress(self, data: bytes) -> bytes:
        if not data:
            raise CompressionError("empty zlib image")
        method = data[0]
        if method == _RAW:
            return bytes(data[1:])
        if method != _DEFLATE:
            raise CompressionError(f"bad zlib method byte {method:#x}")
        try:
            return zlib.decompress(data[1:])
        except zlib.error as exc:
            raise CompressionError(f"corrupt zlib image: {exc}") from exc


register_compressor("zlib", ZlibCompressor)
