"""The "cheap and cheerful" end of the compression spectrum.

The paper's §9.2 trade-off — instructions per byte vs I/O saved — only
bites if the registry actually offers points along the curve.  This
module contributes the fast end:

* ``lz4`` — LZ4 block compression when the :mod:`lz4` package is
  importable, else DEFLATE at level 1 behind the same self-describing
  image format.  Callers never see the difference: images carry a
  method byte, so an image written with real LZ4 is rejected loudly
  (not mis-decoded) on a host without the codec, and vice versa.
* ``zlib-fast`` / ``zlib-best`` — the existing DEFLATE compressor at
  levels 1 and 9, exposing the level knob through the registry.

Nothing here installs anything: the lz4 import is attempted once at
module load and the result gates which backend the ``lz4`` name maps to.
"""

from __future__ import annotations

import zlib

from repro.compress.base import Compressor, register_compressor
from repro.compress.lzrw import ZlibCompressor
from repro.errors import CompressionError

try:  # pragma: no cover - which branch runs depends on the host
    import lz4.block as _lz4block
except ImportError:
    _lz4block = None

#: Method bytes for the self-describing image format (shared namespace
#: with :mod:`repro.compress.lzrw`: 0x00 raw, 0x02 deflate).
_RAW = 0x00
_LZ4 = 0x03
_DEFLATE1 = 0x04


def lz4_available() -> bool:
    """Whether the real LZ4 codec backs the ``lz4`` registry name."""
    return _lz4block is not None


class FastCompressor(Compressor):
    """LZ4 when available, DEFLATE level 1 otherwise — with raw fallback."""

    name = "lz4"

    def compress(self, data: bytes) -> bytes:
        data = bytes(data)
        if _lz4block is not None:
            packed = _lz4block.compress(data, store_size=True)
            method = _LZ4
        else:
            packed = zlib.compress(data, 1)
            method = _DEFLATE1
        if len(packed) >= len(data):
            return bytes([_RAW]) + data
        return bytes([method]) + packed

    def decompress(self, data: bytes) -> bytes:
        if not data:
            raise CompressionError("empty lz4 image")
        method = data[0]
        payload = bytes(data[1:])
        if method == _RAW:
            return payload
        if method == _LZ4:
            if _lz4block is None:
                raise CompressionError(
                    "image was written with the lz4 codec, which is not "
                    "available on this host")
            try:
                return _lz4block.decompress(payload)
            except Exception as exc:
                raise CompressionError(f"corrupt lz4 image: {exc}") from exc
        if method == _DEFLATE1:
            try:
                return zlib.decompress(payload)
            except zlib.error as exc:
                raise CompressionError(f"corrupt lz4 image: {exc}") from exc
        raise CompressionError(f"bad lz4 method byte {method:#x}")


register_compressor("lz4", FastCompressor)
register_compressor("zlib-fast", lambda: ZlibCompressor(level=1))
register_compressor("zlib-best", lambda: ZlibCompressor(level=9))
