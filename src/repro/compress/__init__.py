"""Compression for large ADTs.

The paper attaches compression to large types through their input/output
conversion routines (§3): the input routine compresses, the output routine
uncompresses, and — because f-chunk and v-segment apply the routines per
chunk / per segment rather than per object — "just-in-time" uncompression
of only the byte ranges actually read is possible (§6.3, §6.4).

All compressors here are genuinely lossless.  The paper's two algorithms
("30 % at 8 instructions/byte", "50 % at 20 instructions/byte") are
reproduced by pairing a real compressor with
:class:`~repro.compress.costed.CostedCompressor`, which charges the stated
CPU price to the simulation clock, and with benchmark data whose
compressible fraction yields the stated ratio (see
:mod:`repro.bench.datasets`).
"""

from repro.compress.base import (
    Compressor,
    available_compressors,
    get_compressor,
    register_compressor,
)
from repro.compress.costed import CostedCompressor
from repro.compress.fast import FastCompressor, lz4_available
from repro.compress.null import NullCompressor
from repro.compress.rle import ByteRunCompressor, ZeroRunCompressor
from repro.compress.lzrw import ZlibCompressor

__all__ = [
    "Compressor",
    "NullCompressor",
    "ZeroRunCompressor",
    "ByteRunCompressor",
    "ZlibCompressor",
    "FastCompressor",
    "lz4_available",
    "CostedCompressor",
    "register_compressor",
    "get_compressor",
    "available_compressors",
]
