"""Compressor protocol and registry.

A compressor maps arbitrary bytes to a self-describing compressed image and
back.  Implementations must be **total**: any input round-trips, even
incompressible data (store-raw fallback), because chunk contents are
user-controlled.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.errors import CompressionError


class Compressor(ABC):
    """Lossless byte transformer attached to a large type."""

    #: Registry name.
    name: str = "abstract"

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compressed image of *data* (never larger than ``len(data)+8``)."""

    @abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Original bytes for an image produced by :meth:`compress`."""

    def verify_roundtrip(self, data: bytes) -> bytes:
        """Compress, then check the image decompresses back (tests/tools)."""
        image = self.compress(data)
        back = self.decompress(image)
        if back != bytes(data):
            raise CompressionError(
                f"{self.name}: round-trip mismatch on {len(data)} bytes")
        return image


_REGISTRY: dict[str, Callable[[], Compressor]] = {}


def register_compressor(name: str,
                        factory: Callable[[], Compressor]) -> None:
    """Register a compressor construction routine under *name*."""
    _REGISTRY[name] = factory


def get_compressor(name: str) -> Compressor:
    """Instantiate the compressor registered as *name*."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise CompressionError(
            f"no compressor registered under {name!r} "
            f"(have: {sorted(_REGISTRY)})")
    return factory()


def available_compressors() -> list[str]:
    """Names of all registered compressors, sorted."""
    return sorted(_REGISTRY)
