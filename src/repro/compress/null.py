"""The identity compressor (storage parameter ``compression = "none"``)."""

from __future__ import annotations

from repro.compress.base import Compressor, register_compressor


class NullCompressor(Compressor):
    """Stores data verbatim.  Useful as a baseline and a default."""

    name = "none"

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, data: bytes) -> bytes:
        return bytes(data)


register_compressor("none", NullCompressor)
