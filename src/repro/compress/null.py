"""The identity compressor (storage parameter ``compression = "none"``)."""

from __future__ import annotations

from repro.compress.base import Compressor, register_compressor


class NullCompressor(Compressor):
    """Stores data verbatim.  Useful as a baseline and a default."""

    name = "none"

    def compress(self, data: bytes) -> bytes:
        # Hand exact bytes through untouched (guaranteed no-copy, not
        # just the CPython bytes(b)-is-b behaviour); views/bytearrays
        # still materialize.
        if type(data) is bytes:
            return data
        return bytes(data)

    def decompress(self, data: bytes) -> bytes:
        if type(data) is bytes:
            return data
        return bytes(data)


register_compressor("none", NullCompressor)
