"""Run-length compressors.

:class:`ZeroRunCompressor` squeezes runs of zero bytes — the dominant
redundancy in the benchmark's synthetic media frames (and in real sparse
data: zero padding, silence in audio, black borders in images).  It is
written around :meth:`bytes.find`, so the scan runs at C speed and the
compressor is usable on the benchmark's multi-megabyte transfers.

:class:`ByteRunCompressor` is a classic generic RLE over runs of *any*
byte; simpler and slower, it exists for tests and small data.

Both produce self-describing images with a store-raw fallback, so any
input round-trips and incompressible data costs at most a 1-byte header.
"""

from __future__ import annotations

import struct

from repro.compress.base import Compressor, register_compressor
from repro.errors import CompressionError

_RAW = 0x00
_PACKED = 0x01
_U32 = struct.Struct("<I")

#: Zero runs shorter than this are left as literals (token overhead).
_MIN_ZERO_RUN = 16


class ZeroRunCompressor(Compressor):
    """RLE over runs of zero bytes, literals passed through verbatim.

    Image format: 1 method byte, then tokens:
    ``'L' + u32 length + bytes`` (literal) or ``'Z' + u32 length`` (zeros).
    """

    name = "zero-rle"

    def compress(self, data: bytes) -> bytes:
        data = bytes(data)
        probe = b"\x00" * _MIN_ZERO_RUN
        parts = [bytes([_PACKED])]
        packed_size = 1
        pos = 0
        n = len(data)
        while pos < n:
            hit = data.find(probe, pos)
            if hit < 0:
                hit = n
            if hit > pos:  # literal up to the run (or the end)
                literal = data[pos:hit]
                parts.append(b"L" + _U32.pack(len(literal)) + literal)
                packed_size += 5 + len(literal)
                pos = hit
            if pos >= n:
                break
            run_end = pos
            while run_end < n and data[run_end] == 0:
                run_end += 1
            parts.append(b"Z" + _U32.pack(run_end - pos))
            packed_size += 5
            pos = run_end
        if packed_size >= n + 1:
            return bytes([_RAW]) + data
        return b"".join(parts)

    def decompress(self, data: bytes) -> bytes:
        if not data:
            raise CompressionError("empty zero-rle image")
        method = data[0]
        if method == _RAW:
            return bytes(data[1:])
        if method != _PACKED:
            raise CompressionError(f"bad zero-rle method byte {method:#x}")
        out = bytearray()
        pos = 1
        n = len(data)
        while pos < n:
            token = data[pos:pos + 1]
            (length,) = _U32.unpack_from(data, pos + 1)
            pos += 5
            if token == b"L":
                chunk = data[pos:pos + length]
                if len(chunk) != length:
                    raise CompressionError("truncated zero-rle literal")
                out += chunk
                pos += length
            elif token == b"Z":
                out += bytes(length)
            else:
                raise CompressionError(
                    f"bad zero-rle token {token!r} at offset {pos - 5}")
        return bytes(out)


class ByteRunCompressor(Compressor):
    """Generic RLE: ``(count u8, byte)`` pairs, runs capped at 255.

    Quadratically slower than :class:`ZeroRunCompressor` on large inputs;
    intended for small data and for exercising a second real algorithm in
    tests.
    """

    name = "byte-rle"

    def compress(self, data: bytes) -> bytes:
        data = bytes(data)
        out = bytearray([_PACKED])
        pos = 0
        n = len(data)
        while pos < n:
            byte = data[pos]
            run = 1
            while run < 255 and pos + run < n and data[pos + run] == byte:
                run += 1
            out.append(run)
            out.append(byte)
            pos += run
        if len(out) >= n + 1:
            return bytes([_RAW]) + data
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        if not data:
            raise CompressionError("empty byte-rle image")
        if data[0] == _RAW:
            return bytes(data[1:])
        if data[0] != _PACKED:
            raise CompressionError(f"bad byte-rle method byte {data[0]:#x}")
        if (len(data) - 1) % 2:
            raise CompressionError("odd byte-rle body length")
        out = bytearray()
        for i in range(1, len(data), 2):
            out += bytes([data[i + 1]]) * data[i]
        return bytes(out)


register_compressor("zero-rle", ZeroRunCompressor)
register_compressor("byte-rle", ByteRunCompressor)
