"""Per-session state: the transaction cursor and open descriptors.

A :class:`~repro.db.Database` is shared by every thread in the process;
everything that belongs to *one* caller — which transaction is current,
which large objects it has open — lives on a :class:`Session` instead.
Create one per thread (or per logical connection) with
:meth:`Database.session`:

>>> from repro.db import Database
>>> db = Database()
>>> s = db.session()
>>> _ = db.create_class("EMP", [("name", "text"), ("age", "int4")])
>>> s.begin()
>>> _ = s.insert("EMP", ("Joe", 30))
>>> s.commit()
>>> [t.values for t in s.scan("EMP")]
[('Joe', 30)]

Sessions are deliberately *not* thread-safe: one thread, one session.
The shared core underneath (buffer pool, lock manager, commit log) is
what carries the concurrency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.access.tuples import TID, HeapTuple
from repro.errors import NoActiveTransaction, TransactionError
from repro.txn.manager import Transaction

if TYPE_CHECKING:
    from repro.db import Database
    from repro.lo.interface import LargeObject


class Session:
    """One caller's handle on a shared :class:`~repro.db.Database`.

    Tracks the current transaction and every large object opened through
    it; :meth:`commit` and :meth:`rollback` close those descriptors first
    (flushing write buffers), exactly as the libpq-style front end does.
    """

    def __init__(self, db: "Database"):
        self.db = db
        self.txn: Transaction | None = None
        self._objects: list["LargeObject"] = []

    # -- transactions -------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self.txn is not None and self.txn.is_active

    def begin(self) -> Transaction:
        """Start this session's transaction."""
        if self.in_transaction:
            raise TransactionError("transaction already in progress")
        self.txn = self.db.begin()
        return self.txn

    def commit(self) -> None:
        """Close open descriptors, then commit the current transaction."""
        txn = self.require_transaction()
        self.close_objects()
        try:
            txn.commit()
        finally:
            self.txn = None

    def rollback(self) -> None:
        """Close open descriptors, then abort the current transaction.

        This is also how a :class:`~repro.errors.DeadlockError` victim
        recovers: abort releases its locks, letting the survivors run.
        """
        txn = self.require_transaction()
        self.close_objects()
        try:
            txn.abort()
        finally:
            self.txn = None

    def require_transaction(self) -> Transaction:
        if not self.in_transaction:
            raise NoActiveTransaction(
                "this session has no transaction in progress")
        return self.txn

    # -- DML bound to the session's transaction -----------------------------------

    def insert(self, class_name: str, values: tuple) -> TID:
        return self.db.insert(self.require_transaction(), class_name, values)

    def delete(self, class_name: str, tid: TID) -> None:
        self.db.delete(self.require_transaction(), class_name, tid)

    def replace(self, class_name: str, tid: TID, values: tuple) -> TID:
        return self.db.replace(self.require_transaction(), class_name, tid,
                               values)

    def scan(self, class_name: str, as_of: float | None = None,
             until: float | None = None) -> Iterator[HeapTuple]:
        return self.db.scan(class_name, txn=self.txn, as_of=as_of,
                            until=until)

    def fetch(self, class_name: str, tid: TID,
              as_of: float | None = None) -> HeapTuple | None:
        return self.db.fetch(class_name, tid, txn=self.txn, as_of=as_of)

    def execute(self, query: str):
        """Run a mini-POSTQUEL statement in this session's transaction."""
        return self.db.execute(query, txn=self.txn)

    # -- large objects ------------------------------------------------------------

    def lo_create(self, impl: str = "fchunk", smgr: str | None = None,
                  compression: str = "none",
                  path: str | None = None) -> str:
        """Create a large object; returns its designator."""
        return self.db.lo.create(self.require_transaction(), impl,
                                 smgr=smgr, compression=compression,
                                 path=path)

    def lo_open(self, designator: str, mode: str = "r",
                as_of: float | None = None) -> "LargeObject":
        """Open a large object, tracked for close-on-commit/rollback.

        A handle the user closes early deregisters itself, so commit and
        rollback never re-close it (and unlink does not count it as a
        live descriptor).
        """
        handle = self.db.lo.open(designator, self.require_transaction(),
                                 mode, as_of=as_of)
        self._objects.append(handle)
        handle.on_close.append(lambda: self._forget_object(handle))
        return handle

    def _forget_object(self, handle: "LargeObject") -> None:
        try:
            self._objects.remove(handle)
        except ValueError:  # already swapped out by close_objects
            pass

    def lo_unlink(self, designator: str) -> None:
        self.db.lo.unlink(self.require_transaction(), designator)

    def close_objects(self) -> None:
        """Close every large object opened through this session."""
        objects, self._objects = self._objects, []
        for handle in objects:
            handle.close()

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Abort any open transaction and release the session's state."""
        if self.in_transaction:
            self.rollback()
        else:
            self.close_objects()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (f"xid={self.txn.xid}" if self.in_transaction
                 else "idle")
        return f"Session({state}, {len(self._objects)} open objects)"
