"""Simulated-time accounting for storage devices and CPU work.

The paper's evaluation (Figures 2 and 3) reports *elapsed seconds* on 1992
hardware — magnetic disks and a Sony WORM optical jukebox attached to a
Sequent Symmetry.  That hardware is unavailable, so every storage manager in
this reproduction charges its I/O to a :class:`~repro.sim.clock.SimClock`
through a :class:`~repro.sim.devices.DeviceModel`, and compression charges
instructions-per-byte through a :class:`~repro.sim.devices.CpuModel`.  The
benchmark harness reads the clock to produce the paper-style tables.
"""

from repro.sim.clock import SimClock
from repro.sim.devices import (
    CpuModel,
    DeviceModel,
    jukebox_device,
    magnetic_disk_device,
    nvram_device,
)
from repro.sim.faults import FaultPlan, FaultRule, SimulatedCrash, parse_plan

__all__ = [
    "SimClock",
    "CpuModel",
    "DeviceModel",
    "magnetic_disk_device",
    "nvram_device",
    "jukebox_device",
    "FaultPlan",
    "FaultRule",
    "SimulatedCrash",
    "parse_plan",
]
