"""Device and CPU cost models.

These models substitute for the paper's 1992 hardware (magnetic disks and a
Sony WORM optical jukebox on a Sequent Symmetry).  Each model converts a
physical access pattern — which block, how many bytes, sequential or not —
into simulated seconds charged to a shared :class:`~repro.sim.clock.SimClock`.

The defaults are calibrated to early-1990s hardware so the benchmark tables
land in the same order of magnitude as the paper:

* magnetic disk: ~16 ms average seek, 3600 RPM (8.3 ms half-rotation),
  ~1.6 MB/s sustained transfer;
* WORM jukebox: long seeks, slow transfer, and a multi-second platter
  exchange when an access crosses platters (the paper notes they saw only a
  quarter of the rated raw throughput due to a driver bug — the default
  transfer rate reflects the observed, not rated, speed);
* CPU: ~15 MIPS, used to price the paper's "8 instructions/byte" (30 %) and
  "20 instructions/byte" (50 %) compression algorithms.

The *shape* of Figures 2 and 3 — who wins, where compression pays off — falls
out of access counts and these per-access costs, not of the absolute
constants; the constants only set the scale of the reported seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import SimClock


@dataclass(frozen=True)
class DeviceModel:
    """Cost model for a block device.

    Parameters
    ----------
    name:
        Human-readable device name (appears in benchmark breakdowns).
    avg_seek_s:
        Seconds charged when an access is not sequential with the previous
        one (average head movement).
    rotational_s:
        Rotational latency added to every non-sequential access.
    transfer_bytes_per_s:
        Sustained media transfer rate; every access charges
        ``nbytes / transfer_bytes_per_s``.
    write_penalty:
        Multiplier on transfer time for writes (WORM writes verify).
    platter_bytes:
        If set, the device is a jukebox of removable platters of this size;
        crossing a platter boundary charges ``platter_switch_s``.
    platter_switch_s:
        Seconds for the robot arm to exchange platters.
    """

    name: str
    avg_seek_s: float
    rotational_s: float
    transfer_bytes_per_s: float
    write_penalty: float = 1.0
    platter_bytes: int | None = None
    platter_switch_s: float = 0.0

    def access_time(
        self, sequential: bool, nbytes: int, is_write: bool,
        crossed_platter: bool = False,
    ) -> tuple[float, float]:
        """Return ``(positioning_seconds, transfer_seconds)`` for one access."""
        positioning = 0.0
        if crossed_platter:
            positioning += self.platter_switch_s
        if not sequential:
            positioning += self.avg_seek_s + self.rotational_s
        transfer = nbytes / self.transfer_bytes_per_s
        if is_write:
            transfer *= self.write_penalty
        return positioning, transfer


class DevicePort:
    """Tracks head position for one device and charges a clock.

    A port is shared by every relation file living on the same device, which
    is what makes interleaved access to two files non-sequential — the same
    effect that makes the f-chunk B-tree traversals cost real seeks in the
    paper's random-access rows.
    """

    def __init__(self, model: DeviceModel, clock: SimClock):
        self.model = model
        self.clock = clock
        self._head: tuple[str, int] | None = None
        self._platter: int | None = None
        self.reads = 0
        self.writes = 0
        self.seeks = 0
        self.platter_switches = 0
        #: Simulated seconds this device spent servicing its own accesses.
        #: The shared clock sums every device; ``busy_s`` is what lets a
        #: multi-node topology report its critical path (the busiest
        #: device), which is the number parallel clients actually wait on.
        self.busy_s = 0.0

    def _position(self, fileid: str, offset: int, nbytes: int,
                  is_write: bool) -> float:
        sequential = self._head == (fileid, offset)
        crossed = False
        charged = 0.0
        if self.model.platter_bytes:
            platter = offset // self.model.platter_bytes
            crossed = self._platter is not None and platter != self._platter
            self._platter = platter
        if crossed:
            # A platter exchange costs its full price even when the byte
            # stream is logically sequential — the robot arm moves anyway.
            self.platter_switches += 1
            self.clock.advance(self.model.platter_switch_s, "io.seek")
            charged += self.model.platter_switch_s
        if not sequential:
            self.seeks += 1
            positioning = self.model.avg_seek_s + self.model.rotational_s
            self.clock.advance(positioning, "io.seek")
            charged += positioning
        transfer = nbytes / self.model.transfer_bytes_per_s
        if is_write:
            transfer *= self.model.write_penalty
        self.clock.advance(
            transfer, "io.write" if is_write else "io.read")
        charged += transfer
        self._head = (fileid, offset + nbytes)
        self.busy_s += charged
        return charged

    def charge_read(self, fileid: str, offset: int, nbytes: int) -> float:
        """Charge one read of *nbytes* at *offset* within file *fileid*.

        Returns the seconds charged, so callers modelling degraded devices
        (a slow storage node) can scale the penalty off the real cost.
        """
        self.reads += 1
        return self._position(fileid, offset, nbytes, is_write=False)

    def charge_write(self, fileid: str, offset: int, nbytes: int) -> float:
        """Charge one write of *nbytes* at *offset* within file *fileid*."""
        self.writes += 1
        return self._position(fileid, offset, nbytes, is_write=True)

    def charge_extra(self, seconds: float, category: str) -> None:
        """Charge extra service time (degraded-mode penalties)."""
        self.clock.advance(seconds, category)
        self.busy_s += seconds

    def stats(self) -> dict[str, int | float]:
        """Access counters for benchmark breakdowns."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "seeks": self.seeks,
            "platter_switches": self.platter_switches,
            "busy_s": self.busy_s,
        }


@dataclass(frozen=True)
class CpuModel:
    """Prices CPU work in instructions, as the paper does for compression."""

    mips: float = 15.0

    def seconds_for(self, instructions: float) -> float:
        """Simulated seconds to retire *instructions* instructions."""
        return instructions / (self.mips * 1e6)

    def charge(self, clock: SimClock, instructions: float) -> None:
        """Charge *instructions* of CPU work to *clock*."""
        clock.advance(self.seconds_for(instructions), "cpu")


def magnetic_disk_device() -> DeviceModel:
    """A circa-1992 SCSI magnetic disk (the paper's local-disk manager)."""
    return DeviceModel(
        name="magnetic-disk",
        avg_seek_s=0.016,
        rotational_s=0.0083,
        transfer_bytes_per_s=1.6e6,
    )


def nvram_device() -> DeviceModel:
    """Battery-backed RAM: no positioning cost, memcpy-speed transfer."""
    return DeviceModel(
        name="nvram",
        avg_seek_s=0.0,
        rotational_s=0.0,
        transfer_bytes_per_s=40e6,
    )


def jukebox_device() -> DeviceModel:
    """A WORM optical jukebox, at the throughput the paper observed.

    The paper (§9.3) notes the driver delivered only one quarter of the
    rated raw throughput; the transfer rate here reflects that observation.
    """
    return DeviceModel(
        name="worm-jukebox",
        avg_seek_s=0.30,
        rotational_s=0.05,
        transfer_bytes_per_s=0.35e6,
        write_penalty=2.0,
        platter_bytes=3_276_800_000,
        platter_switch_s=8.0,
    )
