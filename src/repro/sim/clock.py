"""Simulated elapsed-time clock.

A :class:`SimClock` is a monotone accumulator of simulated seconds, split by
named category so benchmark reports can break elapsed time into I/O versus
CPU.  Storage managers and the compression layer share one clock per
:class:`~repro.db.Database`; the benchmark harness snapshots it around each
operation.

The clock also doubles as the *logical* time source for time travel:
transaction commit times are drawn from :meth:`SimClock.now`, which always
moves forward even if no device work happened (a tiny epsilon per call), so
two successive commits never share a timestamp.
"""

from __future__ import annotations

import threading
from collections import defaultdict

from repro.txn.lockdep import LockdepMutex

#: Minimum advance per ``now()`` call, so timestamps are strictly monotone.
_TICK = 1e-9


class SimClock:
    """Accumulates simulated seconds, broken down by category.

    Categories are free-form strings; the conventional ones are
    ``"io.read"``, ``"io.write"``, ``"io.seek"``, and ``"cpu"``.
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._by_category: dict[str, float] = defaultdict(float)
        self._now_calls = 0
        #: Concurrent sessions share one clock; charges must not be lost
        #: and two commits must never draw the same timestamp.  Innermost
        #: lock in the engine: devices charge it under the buffer and
        #: smgr locks, so nothing may be acquired while holding it.
        self._mutex = LockdepMutex("mutex:clock")

    def advance(self, seconds: float, category: str = "other") -> None:
        """Charge *seconds* of simulated time to *category*.

        Negative charges are rejected: simulated time only moves forward.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        with self._mutex:
            self._elapsed += seconds
            self._by_category[category] += seconds

    def now(self) -> float:
        """Current simulated time in seconds, strictly monotone."""
        with self._mutex:
            self._now_calls += 1
            return self._elapsed + self._now_calls * _TICK

    @property
    def elapsed(self) -> float:
        """Total simulated seconds accumulated so far."""
        return self._elapsed

    def elapsed_in(self, category: str) -> float:
        """Simulated seconds charged to *category* (0.0 if never charged)."""
        return self._by_category.get(category, 0.0)

    def breakdown(self) -> dict[str, float]:
        """A copy of the per-category accumulator."""
        return dict(self._by_category)

    def snapshot(self) -> "ClockSnapshot":
        """Capture the current totals; subtract later with ``since``."""
        return ClockSnapshot(self._elapsed, dict(self._by_category))

    def reset(self) -> None:
        """Zero the clock.  Timestamps handed out earlier stay valid only
        relative to each other, so reset between independent benchmark runs,
        never mid-database-lifetime when time travel matters."""
        with self._mutex:
            self._elapsed = 0.0
            self._by_category.clear()
            self._now_calls = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(elapsed={self._elapsed:.6f}s)"


class ClockSnapshot:
    """Immutable capture of a :class:`SimClock` at one instant."""

    __slots__ = ("elapsed", "by_category")

    def __init__(self, elapsed: float, by_category: dict[str, float]):
        self.elapsed = elapsed
        self.by_category = by_category

    def since(self, clock: SimClock) -> "ClockSnapshot":
        """Delta between this snapshot and *clock*'s current state."""
        delta = {
            cat: clock.elapsed_in(cat) - self.by_category.get(cat, 0.0)
            for cat in set(clock.breakdown()) | set(self.by_category)
        }
        return ClockSnapshot(clock.elapsed - self.elapsed, delta)
