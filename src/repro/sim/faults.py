"""Scripted fault plans: *when* to break, and *how*.

The crash-recovery harness needs faults at exact points in the commit
pipeline — "tear the second page write to the chunk file", "die after the
pages are forced but before the ``pg_log`` append".  A :class:`FaultPlan`
scripts those points declaratively; the consumers are
:class:`repro.smgr.faulty.FaultInjector` (block I/O and sync) and
:class:`repro.txn.xlog.CommitLog` (commit-record appends).

Plans are built from :class:`FaultRule` objects or parsed from a one-line
-per-rule DSL::

    # op      file pattern     skip      action
    on write  heap_lo_17*      after 1:  torn 512
    on sync   *:                         error
    on append pg_log:                    crash
    on node   node1            after 40: down

* ``op`` is one of ``read`` / ``write`` / ``sync`` (storage-manager calls),
  ``append`` (a ``pg_log`` record write), or ``node`` (a health transition
  of one storage node in a multi-node manager).
* the file pattern is an :mod:`fnmatch` glob over the relation file id
  (``pg_log`` for appends, the node id for ``node`` rules).
* ``after N`` lets the first *N* matching operations through unharmed
  (for ``node`` rules: the node's first *N* block accesses — which is how
  a node gets killed *mid*-workload).
* the action is ``error`` (raise :class:`StorageManagerError`; the process
  survives and the transaction manager aborts the transaction), ``crash``
  (raise :class:`SimulatedCrash` with nothing persisted), or ``torn N``
  (persist only the first *N* bytes of the payload, then crash — a torn
  page or torn log record, the signature failure of *To BLOB or Not To
  BLOB*'s write-path fault tests).  ``node`` rules instead take a health
  state — ``down`` / ``slow`` / ``flaky`` / ``up`` — applied to the
  matching node; they never raise by themselves (the node's own gate does
  the raising, and a replicated manager absorbs it replica by replica).

After a ``crash``/``torn`` rule fires the plan is **halted**: any further
guarded operation raises :class:`SimulatedCrash` immediately, because a
dead process performs no further I/O.  The test harness catches the
exception, discards the in-memory database object, and reopens the
directory from disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.errors import SimulatedCrash, StorageManagerError

#: Operations a rule may guard.
FAULT_OPS = ("read", "write", "sync", "append", "node")

#: Actions an I/O rule may take when it fires.
FAULT_ACTIONS = ("error", "crash", "torn")

#: Health states a ``node`` rule may put a storage node in.
NODE_ACTIONS = ("down", "slow", "flaky", "up")


@dataclass
class FaultRule:
    """One trigger point: fail operation *op* on files matching *pattern*.

    ``after`` matching operations are let through before the rule fires.
    ``error`` rules keep firing on every later match (a persistently bad
    device); ``crash``/``torn`` rules fire once and halt the whole plan.
    """

    op: str
    pattern: str = "*"
    after: int = 0
    action: str = "error"
    keep_bytes: int = 0
    #: Matching operations seen so far (runtime state).
    seen: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.op not in FAULT_OPS:
            raise ValueError(
                f"unknown fault op {self.op!r} (have: {FAULT_OPS})")
        if self.op == "node":
            if self.action not in NODE_ACTIONS:
                raise ValueError(
                    f"unknown node action {self.action!r} "
                    f"(have: {NODE_ACTIONS})")
        elif self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(have: {FAULT_ACTIONS})")
        if self.after < 0:
            raise ValueError(f"negative 'after' count {self.after}")
        if self.action == "torn":
            if self.op not in ("write", "append"):
                raise ValueError(
                    f"torn faults apply to write/append, not {self.op!r}")
            if self.keep_bytes < 0:
                raise ValueError(
                    f"torn fault keeps a non-negative prefix, "
                    f"got {self.keep_bytes}")

    def matches(self, op: str, fileid: str) -> bool:
        return op == self.op and fnmatchcase(fileid, self.pattern)

    def __str__(self) -> str:
        suffix = f" {self.keep_bytes}" if self.action == "torn" else ""
        skip = f" after {self.after}" if self.after else ""
        return f"on {self.op} {self.pattern}{skip}: {self.action}{suffix}"


class FaultPlan:
    """An ordered set of fault rules plus their shared runtime state."""

    def __init__(self, rules: list[FaultRule] | None = None):
        self.rules = list(rules or [])
        #: True once a crash/torn rule fired; all guarded I/O then fails.
        self.halted = False
        #: Human-readable record of every fault delivered, oldest first.
        self.fired: list[str] = []

    def check(self, op: str, fileid: str) -> FaultRule | None:
        """The rule firing for this operation, or ``None`` to proceed.

        Counts the operation against every matching rule, so ``after``
        budgets keep ticking even while another rule is firing first.
        Raises :class:`SimulatedCrash` outright when the plan is halted.
        """
        if self.halted:
            raise SimulatedCrash(
                f"{op} of {fileid!r} after a simulated crash "
                f"(the harness should have reopened the database)")
        firing = None
        for rule in self.rules:
            if not rule.matches(op, fileid):
                continue
            rule.seen += 1
            if firing is None and rule.seen > rule.after:
                firing = rule
        return firing

    def check_node(self, node_id: str) -> FaultRule | None:
        """The node rule governing this node access, or ``None``.

        Unlike :meth:`check`, the *last* eligible rule wins: a plan can
        script a transition sequence — ``on node n0: down`` followed by
        ``on node n0 after 6: up`` — and the later rule overrides the
        earlier one once its budget is spent.
        """
        if self.halted:
            raise SimulatedCrash(
                f"node {node_id!r} access after a simulated crash "
                f"(the harness should have reopened the database)")
        firing = None
        for rule in self.rules:
            if rule.op != "node" or not rule.matches("node", node_id):
                continue
            rule.seen += 1
            if rule.seen > rule.after:
                firing = rule
        return firing

    def has_node_rules(self) -> bool:
        """Whether any rule targets storage-node health (``on node …``)."""
        return any(rule.op == "node" for rule in self.rules)

    def note(self, detail: str) -> None:
        """Record a fault delivered without raising (node transitions)."""
        self.fired.append(detail)

    def fire(self, rule: FaultRule, detail: str) -> None:
        """Deliver *rule*'s fault (always raises).

        The caller has already persisted the torn prefix if the action is
        ``torn``; this method only records the event and raises.
        """
        self.fired.append(f"{rule.action}: {detail}")
        if rule.action == "error":
            raise StorageManagerError(f"injected device error: {detail}")
        self.halted = True
        raise SimulatedCrash(f"simulated crash ({rule.action}): {detail}")

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "halted" if self.halted else "armed"
        return f"FaultPlan({len(self.rules)} rules, {state})"


def parse_plan(text: str) -> FaultPlan:
    """Parse the fault-plan DSL (see the module docstring) into a plan.

    One rule per line; blank lines and ``#`` comments are ignored.
    Raises :class:`ValueError` with the offending line on any mistake.
    """
    rules = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        rules.append(_parse_rule(line, lineno))
    return FaultPlan(rules)


def _parse_rule(line: str, lineno: int) -> FaultRule:
    def bad(why: str) -> ValueError:
        return ValueError(f"fault plan line {lineno}: {why}: {line!r}")

    if ":" not in line:
        raise bad("expected 'on <op> <pattern> [after N]: <action>'")
    head, _, action_part = line.partition(":")
    head_words = head.split()
    if len(head_words) < 3 or head_words[0] != "on":
        raise bad("trigger must be 'on <op> <pattern> [after N]'")
    op, pattern = head_words[1], head_words[2]
    after = 0
    if len(head_words) > 3:
        if len(head_words) != 5 or head_words[3] != "after":
            raise bad("unexpected words after the file pattern")
        try:
            after = int(head_words[4])
        except ValueError:
            raise bad(f"'after' wants an integer, got {head_words[4]!r}")
    action_words = action_part.split()
    if not action_words:
        raise bad("missing action")
    action = action_words[0]
    keep_bytes = 0
    if action == "torn":
        if len(action_words) != 2:
            raise bad("'torn' wants exactly one byte count")
        try:
            keep_bytes = int(action_words[1])
        except ValueError:
            raise bad(f"'torn' wants an integer, got {action_words[1]!r}")
    elif len(action_words) != 1:
        raise bad(f"unexpected words after action {action!r}")
    try:
        return FaultRule(op=op, pattern=pattern, after=after,
                         action=action, keep_bytes=keep_bytes)
    except ValueError as exc:
        raise bad(str(exc))
