"""Executor for mini-POSTQUEL.

The executor is where the paper's ADT story comes together:

* functions in a target list are resolved by argument *types* and run
  inside the database (§3);
* a large-ADT argument is handed to the function as an **open file-like
  descriptor**, never as an in-memory blob (§3's first problem with small
  ADTs);
* a function returning a large ADT creates a **temporary large object**
  through its context, and temporaries that do not survive into stored
  tuples or the final result are garbage-collected when the query ends
  (§5);
* a class reference may carry a time-travel suffix
  (``from EMP["<stamp>"]``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Any

from repro.access.scan import IndexProbe, IndexRangeScan, SeqScan
from repro.access.schema import SCALAR_TYPES, Attribute
from repro.adt.values import Datum
from repro.errors import ExecutionError
from repro.lo.interface import LargeObject
from repro.lo.temporary import TemporaryObjects
from repro.ql import ast
from repro.ql.parser import parse
from repro.txn.manager import Transaction


@dataclass
class QueryResult:
    """Outcome of one statement."""

    columns: list[str]
    rows: list[tuple]
    count: int
    #: Designators of temporary large objects kept alive because they
    #: appear in ``rows``; the caller owns unlinking them.
    temporaries: set[str]

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, have "
                f"{len(self.rows)}x{len(self.columns)}")
        return self.rows[0][0]

    def first(self) -> tuple | None:
        return self.rows[0] if self.rows else None


class FunctionContext:
    """What a user-defined function may do to the database.

    Passed as the first argument to functions registered with
    ``needs_context=True`` — typically functions that return large ADTs
    and must materialize the result as a temporary object (§5).
    """

    def __init__(self, executor: "Executor", txn: Transaction,
                 temps: TemporaryObjects):
        self.db = executor.db
        self.txn = txn
        self.temps = temps

    def create_temporary(self, impl: str = "fchunk",
                         compression: str = "none") -> str:
        """A fresh temporary large object; collected unless it escapes."""
        designator = self.db.lo.create(self.txn, impl,
                                       compression=compression)
        return self.temps.register(designator)

    def create_temporary_for_type(self, type_name: str) -> str:
        """A temporary stored per a large ADT's storage clause."""
        designator = self.db.lo.create_for_type(self.txn, type_name)
        return self.temps.register(designator)

    def open(self, designator: str, mode: str = "r") -> LargeObject:
        """Open a large object within the function's transaction."""
        return self.db.lo.open(designator, self.txn, mode)


def _walk_classes(node: Any, found: set[str]) -> None:
    """Collect class names referenced by attribute refs under *node*."""
    if isinstance(node, ast.AttributeRef):
        found.add(node.class_name)
    elif is_dataclass(node):
        for field_ in fields(node):
            _walk_classes(getattr(node, field_.name), found)
    elif isinstance(node, tuple):
        for item in node:
            _walk_classes(item, found)


class Executor:
    """Runs parsed statements against a database."""

    def __init__(self, db):
        self.db = db
        self._ensure_builtins()

    def _ensure_builtins(self) -> None:
        if not self.db.functions.exists("newfilename"):
            self.db.register_function(
                "newfilename", (), "text",
                lambda ctx: ctx.db.lo.newfilename(ctx.txn),
                needs_context=True)

    # -- entry point ---------------------------------------------------------------------

    def execute(self, query: str,
                txn: Transaction | None = None) -> QueryResult:
        statement = parse(query)
        own_txn = txn is None
        if own_txn:
            txn = self.db.begin()
        temps = TemporaryObjects(self.db, txn)
        try:
            result = self._dispatch(statement, txn, temps)
            for designator in result.temporaries:
                temps.keep(designator)
            temps.collect()
            if own_txn:
                txn.commit()
            return result
        except BaseException:
            if own_txn and txn.is_active:
                txn.abort()
            raise

    def explain(self, query: str) -> str:
        """A one-paragraph description of how *query* would execute.

        Shows the access path (sequential scan vs. index probe), the
        presence of a filter, time travel, sorting, aggregation, and
        materialization — without running anything.
        """
        statement = parse(query)
        if not isinstance(statement, ast.Retrieve):
            return f"{type(statement).__name__.lower()} (utility statement)"
        class_ref = self._single_class(statement, statement.from_class)
        statement = self._expand_all_targets(statement, class_ref)
        lines = []
        if class_ref is None:
            lines.append("evaluate targets over a single empty row")
        else:
            probe = None
            if class_ref.as_of is None and statement.qualification is not None:
                probe = self._find_index_probe(class_ref.name,
                                               statement.qualification)
            rng = None
            if (probe is None and class_ref.as_of is None
                    and statement.qualification is not None):
                rng = self._find_index_range(class_ref.name,
                                             statement.qualification)
            if probe is not None:
                index_name, key = probe
                attribute = self.db.catalog.indexes[index_name].attribute
                lines.append(f"index probe {index_name} on "
                             f"{class_ref.name}.{attribute} = {key}")
            elif rng is not None:
                index_name, attribute, lo, hi = rng
                lines.append(
                    f"index range scan {index_name} on "
                    f"{class_ref.name}.{attribute} in "
                    f"[{'-inf' if lo is None else lo}, "
                    f"{'+inf' if hi is None else hi}]")
            else:
                lines.append(f"sequential scan of {class_ref.name}")
            if class_ref.as_of is not None:
                if class_ref.until is not None:
                    lines.append(f"  time range [{class_ref.as_of:g}, "
                                 f"{class_ref.until:g}]")
                else:
                    lines.append(f"  as of {class_ref.as_of:g}")
            if statement.qualification is not None:
                lines.append("  filter: qualification re-checked per tuple")
        if self._is_aggregate_query(statement):
            names = ", ".join(t.expr.name for t in statement.targets)
            lines.append(f"aggregate: {names}")
        if statement.sort_by:
            lines.append(f"sort by {len(statement.sort_by)} key(s)")
        if statement.into:
            lines.append(f"materialize into new class {statement.into}")
        return "\n".join(lines)

    def execute_script(self, script: str,
                       txn: Transaction | None = None) -> list[QueryResult]:
        """Run `;`-separated statements, all in one transaction."""
        from repro.ql.parser import Parser
        statements = Parser(script).parse_script()
        own_txn = txn is None
        if own_txn:
            txn = self.db.begin()
        results = []
        try:
            for statement in statements:
                temps = TemporaryObjects(self.db, txn)
                result = self._dispatch(statement, txn, temps)
                for designator in result.temporaries:
                    temps.keep(designator)
                temps.collect()
                results.append(result)
            if own_txn:
                txn.commit()
            return results
        except BaseException:
            if own_txn and txn.is_active:
                txn.abort()
            raise

    def _dispatch(self, statement, txn, temps) -> QueryResult:
        if isinstance(statement, ast.Retrieve):
            return self._retrieve(statement, txn, temps)
        if isinstance(statement, ast.Append):
            return self._append(statement, txn, temps)
        if isinstance(statement, ast.Replace):
            return self._replace(statement, txn, temps)
        if isinstance(statement, ast.Delete):
            return self._delete(statement, txn, temps)
        if isinstance(statement, ast.CreateClass):
            return self._create_class(statement)
        if isinstance(statement, ast.CreateLargeType):
            return self._create_large_type(statement)
        if isinstance(statement, ast.DestroyClass):
            self.db.drop_class(statement.name)
            return QueryResult([], [], 0, set())
        if isinstance(statement, ast.DefineIndex):
            self.db.create_index(statement.name, statement.class_name,
                                 statement.attribute)
            return QueryResult([], [], 0, set())
        raise ExecutionError(f"unsupported statement {statement!r}")

    # -- DDL -----------------------------------------------------------------------------------

    def _create_class(self, statement: ast.CreateClass) -> QueryResult:
        columns = [(c.name, c.type_name) for c in statement.columns]
        self.db.create_class(statement.name, columns,
                             smgr=statement.storage_manager)
        return QueryResult([], [], 0, set())

    def _create_large_type(self,
                           statement: ast.CreateLargeType) -> QueryResult:
        self.db.create_large_type(statement.name,
                                  storage=statement.storage,
                                  compression=statement.compression)
        return QueryResult([], [], 0, set())

    # -- statement execution ---------------------------------------------------------------------

    def _single_class(self, statement, from_class) -> ast.ClassRef | None:
        """The one class a statement ranges over (or None)."""
        referenced: set[str] = set()
        _walk_classes(statement, referenced)
        if from_class is not None:
            referenced.discard(from_class.name)
            if referenced:
                raise ExecutionError(
                    f"query references classes {sorted(referenced)} "
                    f"outside its from-clause ({from_class.name})")
            return from_class
        if not referenced:
            return None
        if len(referenced) > 1:
            raise ExecutionError(
                f"joins are not supported (classes: {sorted(referenced)})")
        return ast.ClassRef(referenced.pop(), None)

    def _matching_tuples(self, class_ref, qualification, txn, temps):
        relation = self.db.get_class(class_ref.name)
        snapshot = self.db.snapshot(txn, as_of=class_ref.as_of,
                                    until=class_ref.until)
        source = self._tuple_source(class_ref, qualification, relation,
                                    snapshot)
        for tup in source:
            if qualification is not None:
                keep = self._eval(qualification, txn, temps,
                                  (class_ref.name, relation, tup))
                if not keep.value:
                    continue
            yield relation, tup

    def _tuple_source(self, class_ref, qualification, relation, snapshot):
        """A heap scan, or an index probe when the qualification allows.

        An equality conjunct ``CLASS.attr = <integer literal>`` over an
        indexed attribute turns the scan into an index lookup, and
        inequality conjuncts (``>=``/``<=``/``>``/``<``, alone or paired
        BETWEEN-style) become one index range scan over the leaf chain.
        Historical scans always walk the heap — archived versions are
        not indexed.
        """
        if class_ref.as_of is None and qualification is not None:
            probe = self._find_index_probe(class_ref.name, qualification)
            if probe is not None:
                index_name, key = probe
                index = self.db.get_index(index_name)
                entry = self.db.catalog.indexes[index_name]
                position = relation.schema.position(entry.attribute)
                # The scan descriptor materializes under the engine
                # latch and re-checks the key against the fetched tuple
                # (stale entries must never surface); qualifications are
                # evaluated outside the latch, so user functions can run
                # DML without lock-before-latch issues.
                yield from IndexProbe(
                    self.db, index, relation, (key,),
                    recheck_position=position).tuples(snapshot)
                return
            rng = self._find_index_range(class_ref.name, qualification)
            if rng is not None:
                index_name, attribute, lo, hi = rng
                index = self.db.get_index(index_name)
                position = relation.schema.position(attribute)
                fetched = IndexRangeScan(
                    self.db, index, relation,
                    None if lo is None else (lo,),
                    None if hi is None else (hi,)).tuples(snapshot)
                for tup in fetched:
                    # Re-check bounds: stale entries must never surface.
                    value = tup.values[position]
                    if value is None:
                        continue
                    if lo is not None and value < lo:
                        continue
                    if hi is not None and value > hi:
                        continue
                    yield tup
                return
        yield from SeqScan(self.db, relation).tuples(snapshot)

    def _find_index_probe(self, class_name: str,
                          qualification) -> tuple[str, int] | None:
        """(index name, key) for an indexable equality conjunct, if any."""
        if isinstance(qualification, ast.BinaryOp):
            if qualification.op == "and":
                return (self._find_index_probe(class_name,
                                               qualification.left)
                        or self._find_index_probe(class_name,
                                                  qualification.right))
            if qualification.op == "=":
                for ref, lit in ((qualification.left, qualification.right),
                                 (qualification.right, qualification.left)):
                    if (isinstance(ref, ast.AttributeRef)
                            and ref.class_name == class_name
                            and isinstance(lit, ast.Literal)
                            and isinstance(lit.value, int)
                            and not isinstance(lit.value, bool)):
                        for entry in self.db.catalog.indexes_on(class_name):
                            if entry.attribute == ref.attribute:
                                return entry.name, lit.value
        return None

    #: How a comparison flips when the literal is on the left.
    _MIRRORED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

    def _collect_bounds(self, class_name: str, qualification,
                        bounds: dict) -> None:
        """Accumulate attr -> [(op, int)] from top-level AND conjuncts."""
        if not isinstance(qualification, ast.BinaryOp):
            return
        if qualification.op == "and":
            self._collect_bounds(class_name, qualification.left, bounds)
            self._collect_bounds(class_name, qualification.right, bounds)
            return
        if qualification.op not in self._MIRRORED:
            return
        for ref, lit, flipped in (
                (qualification.left, qualification.right, False),
                (qualification.right, qualification.left, True)):
            if (isinstance(ref, ast.AttributeRef)
                    and ref.class_name == class_name
                    and isinstance(lit, ast.Literal)
                    and isinstance(lit.value, int)
                    and not isinstance(lit.value, bool)):
                op = (self._MIRRORED[qualification.op] if flipped
                      else qualification.op)
                bounds.setdefault(ref.attribute, []).append((op, lit.value))

    def _find_index_range(self, class_name: str, qualification) -> (
            tuple[str, str, int | None, int | None] | None):
        """(index, attribute, lo, hi) for an indexable inequality range.

        Strict bounds are tightened to inclusive integer bounds (the
        indexable attributes are integers), so ``a > 5 and a < 9``
        becomes the key range ``[6, 8]``.  Either side may be open.
        """
        bounds: dict[str, list[tuple[str, int]]] = {}
        self._collect_bounds(class_name, qualification, bounds)
        for entry in self.db.catalog.indexes_on(class_name):
            constraints = bounds.get(entry.attribute)
            if not constraints:
                continue
            lo: int | None = None
            hi: int | None = None
            for op, value in constraints:
                if op == ">":
                    value += 1
                    op = ">="
                elif op == "<":
                    value -= 1
                    op = "<="
                if op == ">=":
                    lo = value if lo is None else max(lo, value)
                else:
                    hi = value if hi is None else min(hi, value)
            return entry.name, entry.attribute, lo, hi
        return None

    def _expand_all_targets(self, statement: ast.Retrieve,
                            class_ref) -> ast.Retrieve:
        """POSTQUEL's ``CLASS.all``: expand to every attribute."""
        if not any(isinstance(t.expr, ast.AttributeRef)
                   and t.expr.attribute == "all"
                   for t in statement.targets):
            return statement
        expanded: list[ast.Target] = []
        for target in statement.targets:
            expr = target.expr
            if isinstance(expr, ast.AttributeRef) and expr.attribute == "all":
                relation = self.db.get_class(expr.class_name)
                expanded.extend(
                    ast.Target(ast.AttributeRef(expr.class_name, name))
                    for name in relation.schema.names())
            else:
                expanded.append(target)
        return ast.Retrieve(tuple(expanded), statement.from_class,
                            statement.qualification, into=statement.into,
                            sort_by=statement.sort_by)

    #: Aggregate target functions: name -> (combine(values), result type
    #: or None to inherit the argument's type).
    _AGGREGATES = {
        "count": (len, "int4"),
        "sum": (sum, None),
        "avg": (lambda vs: sum(vs) / len(vs) if vs else None, "float8"),
        "min": (lambda vs: min(vs) if vs else None, None),
        "max": (lambda vs: max(vs) if vs else None, None),
    }

    def _is_aggregate_query(self, statement: ast.Retrieve) -> bool:
        found = any(isinstance(t.expr, ast.FunctionCall)
                    and t.expr.name in self._AGGREGATES
                    and not self.db.functions.exists(t.expr.name)
                    for t in statement.targets)
        if found and not all(
                isinstance(t.expr, ast.FunctionCall)
                and t.expr.name in self._AGGREGATES
                for t in statement.targets):
            raise ExecutionError(
                "aggregates cannot be mixed with plain targets")
        return found

    def _retrieve_aggregate(self, statement: ast.Retrieve, class_ref,
                            txn, temps) -> QueryResult:
        """``retrieve (count(EMP.name), avg(EMP.salary)) where ...``"""
        if class_ref is None:
            raise ExecutionError("aggregates need a class to range over")
        columns = [self._target_name(i, t)
                   for i, t in enumerate(statement.targets)]
        collected: list[list] = [[] for _ in statement.targets]
        arg_types: list[str | None] = [None] * len(statement.targets)
        for _relation, tup in self._matching_tuples(
                class_ref, statement.qualification, txn, temps):
            row_ctx = (class_ref.name, _relation, tup)
            for position, target in enumerate(statement.targets):
                if len(target.expr.args) != 1:
                    raise ExecutionError(
                        f"aggregate {target.expr.name} takes exactly "
                        f"one argument")
                (argument,) = target.expr.args
                datum = self._eval(argument, txn, temps, row_ctx)
                arg_types[position] = datum.type_name
                if datum.value is not None:
                    collected[position].append(datum.value)
        row = []
        for position, target in enumerate(statement.targets):
            combine, _result_type = self._AGGREGATES[target.expr.name]
            row.append(combine(collected[position]))
        return QueryResult(columns, [tuple(row)], 1, set())

    def _retrieve(self, statement: ast.Retrieve, txn,
                  temps) -> QueryResult:
        class_ref = self._single_class(statement, statement.from_class)
        statement = self._expand_all_targets(statement, class_ref)
        if self._is_aggregate_query(statement):
            return self._retrieve_aggregate(statement, class_ref, txn,
                                            temps)
        columns = [self._target_name(i, target)
                   for i, target in enumerate(statement.targets)]
        rows = []
        sort_keys = []
        if class_ref is None:
            row = tuple(self._eval(t.expr, txn, temps, None)
                        for t in statement.targets)
            rows.append(row)
        else:
            for _relation, tup in self._matching_tuples(
                    class_ref, statement.qualification, txn, temps):
                row_ctx = (class_ref.name, _relation, tup)
                rows.append(tuple(
                    self._eval(t.expr, txn, temps, row_ctx)
                    for t in statement.targets))
                if statement.sort_by:
                    sort_keys.append(tuple(
                        self._eval(expr, txn, temps, row_ctx).value
                        for expr, _desc in statement.sort_by))
        if statement.sort_by and rows:
            rows = self._sorted_rows(rows, sort_keys, statement.sort_by)
        kept = {d.value for row in rows for d in row
                if isinstance(d.value, str) and d.value in temps.pending()}
        if statement.into is not None:
            return self._materialize_into(statement, columns, rows, txn,
                                          temps)
        plain_rows = [tuple(d.value for d in row) for row in rows]
        return QueryResult(columns, plain_rows, len(plain_rows), kept)

    def _materialize_into(self, statement: ast.Retrieve,
                          columns: list[str], rows, txn,
                          temps) -> QueryResult:
        """``retrieve into NEWCLASS``: create the class and fill it."""
        types = []
        for position, target in enumerate(statement.targets):
            inferred = self._static_type(target.expr)
            if inferred is None and rows:
                inferred = rows[0][position].type_name
            types.append(inferred or "text")
        relation = self.db.create_class(statement.into,
                                        list(zip(columns, types)))
        for row in rows:
            values = tuple(
                self._coerce(datum, relation.schema.attributes[i], temps)
                for i, datum in enumerate(row))
            self.db.insert(txn, statement.into, values)
        return QueryResult(columns, [], len(rows), set())

    def _static_type(self, expr) -> str | None:
        """Best-effort type of an expression without evaluating it."""
        if isinstance(expr, ast.Literal):
            return Datum.infer(expr.value).type_name
        if isinstance(expr, ast.AttributeRef):
            try:
                relation = self.db.get_class(expr.class_name)
                return relation.schema.attribute(expr.attribute).type_name
            except Exception:
                return None
        if isinstance(expr, ast.Cast):
            return expr.type_name
        if isinstance(expr, ast.FunctionCall):
            candidates = self.db.functions._by_name.get(expr.name, [])
            returns = {c.return_type for c in candidates}
            return returns.pop() if len(returns) == 1 else None
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            return self._static_type(expr.operand)
        return None

    @staticmethod
    def _sorted_rows(rows, sort_keys, sort_by):
        """Stable multi-key sort honouring per-key direction."""
        order = list(range(len(rows)))
        # Sort by the least-significant key first (stable sorts compose).
        for position in reversed(range(len(sort_by))):
            descending = sort_by[position][1]
            order.sort(key=lambda i: sort_keys[i][position],
                       reverse=descending)
        return [rows[i] for i in order]

    @staticmethod
    def _target_name(position: int, target: ast.Target) -> str:
        if target.name:
            return target.name
        expr = target.expr
        if isinstance(expr, ast.AttributeRef):
            return expr.attribute
        if isinstance(expr, ast.FunctionCall):
            return expr.name
        return f"column{position + 1}"

    def _append(self, statement: ast.Append, txn, temps) -> QueryResult:
        relation = self.db.get_class(statement.class_name)
        values = self._build_row(relation, statement.assignments, None,
                                 txn, temps)
        self.db.insert(txn, statement.class_name, values)
        return QueryResult([], [], 1, set())

    def _replace(self, statement: ast.Replace, txn, temps) -> QueryResult:
        class_ref = ast.ClassRef(statement.class_name, None)
        count = 0
        matches = list(self._matching_tuples(
            class_ref, statement.qualification, txn, temps))
        for relation, tup in matches:
            values = self._build_row(relation, statement.assignments,
                                     (statement.class_name, relation, tup),
                                     txn, temps)
            self.db.replace(txn, statement.class_name, tup.tid, values)
            count += 1
        return QueryResult([], [], count, set())

    def _delete(self, statement: ast.Delete, txn, temps) -> QueryResult:
        class_ref = ast.ClassRef(statement.class_name, None)
        count = 0
        matches = list(self._matching_tuples(
            class_ref, statement.qualification, txn, temps))
        for _relation, tup in matches:
            self.db.delete(txn, statement.class_name, tup.tid)
            count += 1
        return QueryResult([], [], count, set())

    def _build_row(self, relation, assignments, row_ctx, txn,
                   temps) -> tuple:
        """Evaluate assignments into a full tuple for *relation*."""
        if row_ctx is not None:
            values = list(row_ctx[2].values)
        else:
            values = [None] * len(relation.schema)
        for name, expr in assignments:
            position = relation.schema.position(name)
            attr = relation.schema.attributes[position]
            datum = self._eval(expr, txn, temps, row_ctx)
            values[position] = self._coerce(datum, attr, temps)
        return tuple(values)

    # -- value coercion -----------------------------------------------------------------------------

    def _coerce(self, datum: Datum, attr: Attribute, temps) -> Any:
        """Convert *datum* into the stored form for column *attr*."""
        definition = self.db.types.get(attr.type_name)
        if definition.is_large:
            if not isinstance(datum.value, str):
                raise ExecutionError(
                    f"column {attr.name!r} stores a large-object "
                    f"designator, got {datum.type_name}")
            temps.keep(datum.value)  # stored: survives GC (§5)
            return datum.value
        if attr.type_name in SCALAR_TYPES:
            return self._coerce_scalar(datum, attr)
        # Custom small ADT: store its text rendering.
        if datum.type_name == attr.type_name:
            return definition.render(datum.value)
        if datum.type_name in ("text", "name"):
            definition.parse(datum.value)  # validate
            return datum.value
        raise ExecutionError(
            f"cannot store a {datum.type_name} into column "
            f"{attr.name!r} of type {attr.type_name}")

    def _coerce_scalar(self, datum: Datum, attr: Attribute) -> Any:
        target = attr.type_name
        value = datum.value
        widening = {
            "int8": ("int4", "oid"),
            "oid": ("int4", "int8"),
            "float8": ("int4", "int8"),
            "text": ("name",),
            "name": ("text",),
            "int4": (),
            "bool": (),
            "bytea": (),
        }
        if datum.type_name == target:
            return value
        if datum.type_name in widening.get(target, ()):
            return float(value) if target == "float8" else value
        if datum.type_name in ("text", "name"):
            return self.db.types.get(target).parse(value)
        raise ExecutionError(
            f"cannot store a {datum.type_name} into column "
            f"{attr.name!r} of type {target}")

    # -- expression evaluation -------------------------------------------------------------------------

    def _eval(self, node, txn, temps, row_ctx) -> Datum:
        if isinstance(node, ast.Literal):
            return Datum.infer(node.value)
        if isinstance(node, ast.AttributeRef):
            return self._eval_attribute(node, row_ctx)
        if isinstance(node, ast.Cast):
            operand = self._eval(node.operand, txn, temps, row_ctx)
            definition = self.db.types.get(node.type_name)
            if operand.type_name == node.type_name:
                return operand
            return Datum(node.type_name, definition.parse(str(operand.value)))
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, txn, temps, row_ctx)
            if node.op == "not":
                return Datum("bool", not operand.value)
            return Datum(operand.type_name, -operand.value)
        if isinstance(node, ast.BinaryOp):
            return self._eval_binary(node, txn, temps, row_ctx)
        if isinstance(node, ast.FunctionCall):
            return self._eval_call(node, txn, temps, row_ctx)
        raise ExecutionError(f"cannot evaluate {node!r}")

    def _eval_attribute(self, node: ast.AttributeRef, row_ctx) -> Datum:
        if row_ctx is None:
            raise ExecutionError(
                f"{node.class_name}.{node.attribute} used outside a "
                f"class context")
        class_name, relation, tup = row_ctx
        if node.class_name != class_name:
            raise ExecutionError(
                f"attribute of {node.class_name!r} in a query over "
                f"{class_name!r}")
        position = relation.schema.position(node.attribute)
        attr = relation.schema.attributes[position]
        raw = tup.values[position]
        definition = self.db.types.get(attr.type_name)
        if (not definition.is_large and attr.type_name not in SCALAR_TYPES
                and raw is not None):
            return Datum(attr.type_name, definition.parse(raw))
        return Datum(attr.type_name, raw)

    _COMPARISONS = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def _eval_binary(self, node: ast.BinaryOp, txn, temps,
                     row_ctx) -> Datum:
        if node.op in ("and", "or"):
            left = self._eval(node.left, txn, temps, row_ctx)
            if node.op == "and" and not left.value:
                return Datum("bool", False)
            if node.op == "or" and left.value:
                return Datum("bool", True)
            right = self._eval(node.right, txn, temps, row_ctx)
            return Datum("bool", bool(right.value))
        left = self._eval(node.left, txn, temps, row_ctx)
        right = self._eval(node.right, txn, temps, row_ctx)
        if node.op in self._COMPARISONS:
            try:
                return Datum("bool",
                             self._COMPARISONS[node.op](left.value,
                                                        right.value))
            except TypeError as exc:
                raise ExecutionError(
                    f"cannot compare {left.type_name} {node.op} "
                    f"{right.type_name}") from exc
        definition = self.db.functions.resolve_operator(
            node.op, left.type_name, right.type_name)
        value = definition.fn(left.value, right.value)
        return Datum(definition.return_type, value)

    def _eval_call(self, node: ast.FunctionCall, txn, temps,
                   row_ctx) -> Datum:
        args = [self._eval(arg, txn, temps, row_ctx) for arg in node.args]
        definition = self.db.functions.resolve(
            node.name, tuple(a.type_name for a in args))
        call_args = []
        opened: list[LargeObject] = []
        try:
            for datum in args:
                type_def = (self.db.types.get(datum.type_name)
                            if self.db.types.exists(datum.type_name)
                            else None)
                if type_def is not None and type_def.is_large:
                    # §3: large values reach functions as open descriptors.
                    handle = self.db.lo.open(datum.value, txn, "r")
                    opened.append(handle)
                    call_args.append(handle)
                else:
                    call_args.append(datum.value)
            if definition.needs_context:
                context = FunctionContext(self, txn, temps)
                result = definition.fn(context, *call_args)
            else:
                result = definition.fn(*call_args)
        finally:
            for handle in opened:
                handle.close()
        if isinstance(result, LargeObject):
            result.close()
            result = result.designator
        return Datum(definition.return_type, result)
