"""Tokenizer for mini-POSTQUEL.

Keywords are case-insensitive; identifiers keep their case (class names in
the paper are uppercase: ``EMP``).  Strings are double-quoted with ``\\``
escapes, per the paper's examples (``"Joe"``, ``"0,0,20,20"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = frozenset({
    "create", "large", "type", "append", "retrieve", "replace", "delete",
    "destroy", "where", "from", "with", "storage", "manager", "and", "or",
    "not", "input", "output", "compression", "into", "define", "index",
    "on", "sort", "by",
})

#: Multi-character operators, longest first.
_OPERATORS = ("::", "!=", "<=", ">=", "<", ">", "=", "+", "-", "*", "/",
              "(", ")", "[", "]", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    kind: str  # 'name' | 'keyword' | 'string' | 'int' | 'float' | 'op' | 'eof'
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.value == op


def tokenize(text: str) -> list[Token]:
    """Token stream for *text*, ending with an ``eof`` token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(text)

    def column() -> int:
        return pos - line_start

    while pos < n:
        ch = text[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch.isspace():
            pos += 1
            continue
        if ch == '"':
            start_line, start_col = line, column()
            pos += 1
            out = []
            while pos < n and text[pos] != '"':
                if text[pos] == "\\" and pos + 1 < n:
                    pos += 1
                out.append(text[pos])
                pos += 1
            if pos >= n:
                raise ParseError("unterminated string literal",
                                 start_line, start_col)
            pos += 1
            tokens.append(Token("string", "".join(out),
                                start_line, start_col))
            continue
        if ch.isdigit():
            start_col = column()
            start = pos
            while pos < n and text[pos].isdigit():
                pos += 1
            is_float = False
            if pos < n and text[pos] == "." and pos + 1 < n \
                    and text[pos + 1].isdigit():
                is_float = True
                pos += 1
                while pos < n and text[pos].isdigit():
                    pos += 1
            if pos < n and text[pos] in "eE":
                probe = pos + 1
                if probe < n and text[probe] in "+-":
                    probe += 1
                if probe < n and text[probe].isdigit():
                    is_float = True
                    pos = probe
                    while pos < n and text[pos].isdigit():
                        pos += 1
            kind = "float" if is_float else "int"
            tokens.append(Token(kind, text[start:pos], line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start_col = column()
            start = pos
            while pos < n and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            if word.lower() in KEYWORDS:
                tokens.append(Token("keyword", word.lower(),
                                    line, start_col))
            else:
                tokens.append(Token("name", word, line, start_col))
            continue
        for op in _OPERATORS:
            if text.startswith(op, pos):
                tokens.append(Token("op", op, line, column()))
                pos += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, column())
    tokens.append(Token("eof", "", line, column()))
    return tokens
