"""Recursive-descent parser for mini-POSTQUEL."""

from __future__ import annotations

from repro.errors import ParseError
from repro.ql import ast
from repro.ql.lexer import Token, tokenize


class Parser:
    """Parses one statement."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def _fail(self, message: str) -> ParseError:
        token = self.current
        got = token.value or "<end of input>"
        return ParseError(f"{message}, got {got!r}", token.line,
                          token.column)

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise self._fail(f"expected {op!r}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self._fail(f"expected {word!r}")
        return self.advance()

    def expect_name(self) -> str:
        if self.current.kind != "name":
            raise self._fail("expected a name")
        return self.advance().value

    def accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    # -- entry point -----------------------------------------------------------------

    def parse_statement(self):
        statement = self._statement()
        self.accept_op(";")
        if self.current.kind != "eof":
            raise self._fail("trailing input after statement")
        return statement

    def parse_script(self) -> list:
        """Parse `;`-separated statements."""
        statements = []
        while self.current.kind != "eof":
            statements.append(self._statement())
            if not self.accept_op(";") and self.current.kind != "eof":
                raise self._fail("expected ';' between statements")
        return statements

    def _statement(self):
        token = self.current
        if token.kind != "keyword":
            raise self._fail("expected a statement keyword")
        handler = {
            "create": self._create,
            "append": self._append,
            "retrieve": self._retrieve,
            "replace": self._replace,
            "delete": self._delete,
            "destroy": self._destroy,
            "define": self._define,
        }.get(token.value)
        if handler is None:
            raise self._fail(f"cannot start a statement with {token.value!r}")
        self.advance()
        return handler()

    # -- statements ---------------------------------------------------------------------

    def _create(self):
        if self.current.is_keyword("large") or self.current.is_keyword("type"):
            return self._create_large_type()
        name = self.expect_name()
        self.expect_op("(")
        columns = []
        while True:
            col = self.expect_name()
            self.expect_op("=")
            type_name = self.expect_name()
            columns.append(ast.ColumnDef(col, type_name))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        smgr = None
        if self.accept_keyword("with"):
            self.expect_keyword("storage")
            self.expect_keyword("manager")
            if self.current.kind == "string":
                smgr = self.advance().value
            else:
                smgr = self.expect_name()
        return ast.CreateClass(name, tuple(columns), smgr)

    def _create_large_type(self):
        large = self.accept_keyword("large")
        self.expect_keyword("type")
        if not large:
            raise self._fail(
                "only 'create large type' is supported (small ADTs are "
                "registered through the API)")
        name = self.expect_name()
        self.expect_op("(")
        storage = "fchunk"
        compression = "none"
        input_name = output_name = None
        while True:
            token = self.current
            if token.is_keyword("input"):
                self.advance()
                self.expect_op("=")
                input_name = self.expect_name()
            elif token.is_keyword("output"):
                self.advance()
                self.expect_op("=")
                output_name = self.expect_name()
            elif token.is_keyword("storage"):
                self.advance()
                self.expect_op("=")
                storage = self._name_or_string_with_dash()
            elif token.is_keyword("compression"):
                self.advance()
                self.expect_op("=")
                if self.current.kind == "string":
                    compression = self.advance().value
                else:
                    compression = self._name_or_string_with_dash()
            else:
                raise self._fail(
                    "expected input/output/storage/compression")
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return ast.CreateLargeType(name, storage=storage,
                                   compression=compression,
                                   input_name=input_name,
                                   output_name=output_name)

    def _name_or_string_with_dash(self) -> str:
        """A value like ``f-chunk``: NAME ('-' NAME)* or a string."""
        if self.current.kind == "string":
            return self.advance().value
        word = self.expect_name()
        while self.current.is_op("-"):
            self.advance()
            word += "-" + self.expect_name()
        return word

    def _assignments(self) -> tuple:
        self.expect_op("(")
        assignments = []
        while True:
            name = self.expect_name()
            self.expect_op("=")
            assignments.append((name, self._expr()))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return tuple(assignments)

    def _append(self):
        name = self.expect_name()
        return ast.Append(name, self._assignments())

    def _qualification(self):
        if self.accept_keyword("where"):
            return self._expr()
        return None

    def _define(self):
        self.expect_keyword("index")
        name = self.expect_name()
        self.expect_keyword("on")
        class_name = self.expect_name()
        self.expect_op("(")
        attribute = self.expect_name()
        self.expect_op(")")
        return ast.DefineIndex(name, class_name, attribute)

    def _retrieve(self):
        into = None
        if self.accept_keyword("into"):
            into = self.expect_name()
        self.expect_op("(")
        targets = []
        while True:
            # Lookahead for `name = expr` result naming.
            result_name = None
            if (self.current.kind == "name"
                    and self.tokens[self.pos + 1].is_op("=")):
                result_name = self.advance().value
                self.advance()  # '='
            targets.append(ast.Target(self._expr(), result_name))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        from_class = None
        if self.accept_keyword("from"):
            from_class = self._class_ref()
        qualification = self._qualification()
        sort_by = []
        if self.accept_keyword("sort"):
            self.expect_keyword("by")
            while True:
                # Sort keys parse at additive level so a trailing `<`/`>`
                # reads as the direction (POSTQUEL wrote `using <`), not
                # as a comparison.
                expr = self._additive()
                descending = False
                if self.current.is_op("<") or self.current.is_op(">"):
                    descending = self.advance().value == ">"
                sort_by.append((expr, descending))
                if not self.accept_op(","):
                    break
        return ast.Retrieve(tuple(targets), from_class, qualification,
                            into=into, sort_by=tuple(sort_by))

    def _class_ref(self) -> ast.ClassRef:
        name = self.expect_name()
        as_of = until = None
        if self.accept_op("["):
            stamps = [self._time_value()]
            while self.accept_op(","):
                stamps.append(self._time_value())
            self.expect_op("]")
            if len(stamps) == 1:
                as_of = stamps[0]  # None ("now") = a current snapshot
            elif len(stamps) == 2:
                lower, upper = stamps
                if lower is not None or upper is not None:
                    as_of = lower if lower is not None else 0.0
                    until = upper if upper is not None else float("inf")
            else:
                raise ParseError(
                    "a time-travel suffix takes one or two stamps",
                    self.current.line, self.current.column)
        return ast.ClassRef(name, as_of, until)

    def _time_value(self) -> float | None:
        token = self.advance()
        if token.kind in ("int", "float"):
            return float(token.value)
        if token.kind == "string":
            text = token.value.strip().lower()
            if text == "now":
                return None
            if text == "epoch":
                return 0.0
            try:
                return float(text)
            except ValueError:
                raise ParseError(
                    f"bad time-travel stamp {token.value!r}",
                    token.line, token.column) from None
        raise ParseError("expected a time-travel stamp",
                         token.line, token.column)

    def _replace(self):
        name = self.expect_name()
        assignments = self._assignments()
        return ast.Replace(name, assignments, self._qualification())

    def _delete(self):
        name = self.expect_name()
        return ast.Delete(name, self._qualification())

    def _destroy(self):
        return ast.DestroyClass(self.expect_name())

    # -- expressions (precedence climbing) --------------------------------------------------

    def _expr(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.accept_keyword("or"):
            left = ast.BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.accept_keyword("and"):
            left = ast.BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self):
        if self.accept_keyword("not"):
            return ast.UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        for op in ("!=", "<=", ">=", "<", ">", "="):
            if self.current.is_op(op):
                self.advance()
                return ast.BinaryOp(op, left, self._additive())
        return left

    def _additive(self):
        left = self._multiplicative()
        while self.current.is_op("+") or self.current.is_op("-"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self):
        left = self._unary()
        while self.current.is_op("*") or self.current.is_op("/"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self._unary())
        return left

    def _unary(self):
        if self.current.is_op("-"):
            self.advance()
            return ast.UnaryOp("-", self._unary())
        return self._postfix()

    def _postfix(self):
        node = self._primary()
        while self.current.is_op("::"):
            self.advance()
            node = ast.Cast(node, self.expect_name())
        return node

    def _primary(self):
        token = self.current
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "int":
            self.advance()
            return ast.Literal(int(token.value))
        if token.kind == "float":
            self.advance()
            return ast.Literal(float(token.value))
        if token.is_op("("):
            self.advance()
            node = self._expr()
            self.expect_op(")")
            return node
        if token.kind == "name":
            name = self.advance().value
            if self.accept_op("."):
                attribute = self.expect_name()
                return ast.AttributeRef(name, attribute)
            if self.accept_op("("):
                args = []
                if not self.current.is_op(")"):
                    while True:
                        args.append(self._expr())
                        if not self.accept_op(","):
                            break
                self.expect_op(")")
                return ast.FunctionCall(name, tuple(args))
            raise self._fail(
                f"bare name {name!r} is not an expression (use "
                f"class.attribute or a function call)")
        raise self._fail("expected an expression")


def parse(text: str):
    """Parse one mini-POSTQUEL statement."""
    return Parser(text).parse_statement()
