"""psql-style rendering of query results.

>>> print(format_result(db.execute('retrieve (EMP.name, EMP.age)')))
 name | age
------+-----
 Joe  |  30
 Sam  |  50
(2 rows)
"""

from __future__ import annotations

from repro.ql.executor import QueryResult


def _render_value(value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "t" if value else "f"
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, bytes):
        return "\\x" + value.hex()
    return str(value)


def format_result(result: QueryResult, max_width: int = 60) -> str:
    """A monospace table of *result*, numeric columns right-aligned."""
    if not result.columns:
        return f"({result.count} affected)"
    rendered = [[_render_value(v)[:max_width] for v in row]
                for row in result.rows]
    numeric = [
        all(isinstance(row[i], (int, float)) and not isinstance(row[i], bool)
            for row in result.rows if row[i] is not None)
        for i in range(len(result.columns))
    ]
    widths = [
        max(len(result.columns[i]),
            *(len(r[i]) for r in rendered)) if rendered
        else len(result.columns[i])
        for i in range(len(result.columns))
    ]

    def fmt_cell(text: str, i: int) -> str:
        return (text.rjust(widths[i]) if numeric[i]
                else text.ljust(widths[i]))

    header = " " + " | ".join(
        result.columns[i].ljust(widths[i])
        for i in range(len(result.columns)))
    separator = "-" + "-+-".join("-" * w for w in widths) + "-"
    lines = [header.rstrip(), separator]
    for row in rendered:
        line = " " + " | ".join(fmt_cell(row[i], i)
                                for i in range(len(row)))
        lines.append(line.rstrip())
    plural = "row" if len(result.rows) == 1 else "rows"
    lines.append(f"({len(result.rows)} {plural})")
    return "\n".join(lines)
