"""A mini-POSTQUEL query language.

Covers the statements the paper's examples use:

* ``create EMP (name = text, picture = image)`` (with an optional
  ``with storage manager "worm"`` clause, §7),
* ``create large type image (storage = f-chunk, compression = "zlib")``
  (§4's extended ADT syntax),
* ``append EMP (name = "Joe", picture = "/usr/joe")`` (§6.1),
* ``retrieve (EMP.picture) where EMP.name = "Joe"`` (§4),
* ``retrieve (clip(EMP.picture, "0,0,20,20"::rect)) where ...`` (§5,
  including temporary-object garbage collection),
* ``replace`` / ``delete`` with qualifications,
* time travel: ``retrieve (EMP.name) from EMP["<timestamp>"]``.

Single-class queries only (every example in the paper is single-class);
joins are out of scope.
"""

from repro.ql.executor import Executor, QueryResult

__all__ = ["Executor", "QueryResult"]
