"""Abstract syntax for mini-POSTQUEL."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


# -- expressions ------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A constant: string, int, or float."""

    value: Any


@dataclass(frozen=True)
class AttributeRef:
    """``EMP.name`` — attribute of the query's class."""

    class_name: str
    attribute: str


@dataclass(frozen=True)
class FunctionCall:
    """``clip(EMP.picture, r)`` — a registered ADT function."""

    name: str
    args: tuple


@dataclass(frozen=True)
class BinaryOp:
    """Comparison, boolean, or arithmetic operator application."""

    op: str
    left: Any
    right: Any


@dataclass(frozen=True)
class UnaryOp:
    """``not x`` or ``-x``."""

    op: str
    operand: Any


@dataclass(frozen=True)
class Cast:
    """``expr::type`` — run the target type's input conversion."""

    operand: Any
    type_name: str


# -- statements ----------------------------------------------------------------------


@dataclass(frozen=True)
class Target:
    """One target-list entry, optionally named (``result = expr``)."""

    expr: Any
    name: str | None = None


@dataclass(frozen=True)
class ClassRef:
    """A class in a from-clause, optionally with a time-travel suffix.

    ``EMP["123.5"]`` reads the class as of simulated time 123.5;
    ``EMP["t1", "t2"]`` reads every version alive at any point in the
    interval (POSTQUEL time-range semantics).
    """

    name: str
    as_of: float | None = None
    until: float | None = None


@dataclass(frozen=True)
class Retrieve:
    targets: tuple[Target, ...]
    from_class: ClassRef | None
    qualification: Any | None
    #: ``retrieve into NEWCLASS (...)`` materializes the result.
    into: str | None = None
    #: ``sort by <expr> [, <expr> ...]``; each entry (expr, descending).
    sort_by: tuple = ()


@dataclass(frozen=True)
class Append:
    class_name: str
    assignments: tuple[tuple[str, Any], ...]


@dataclass(frozen=True)
class Replace:
    class_name: str
    assignments: tuple[tuple[str, Any], ...]
    qualification: Any | None


@dataclass(frozen=True)
class Delete:
    class_name: str
    qualification: Any | None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str


@dataclass(frozen=True)
class CreateClass:
    name: str
    columns: tuple[ColumnDef, ...]
    storage_manager: str | None = None


@dataclass(frozen=True)
class CreateLargeType:
    """§4: create large type T (input=…, output=…, storage=…)."""

    name: str
    storage: str = "fchunk"
    compression: str = "none"
    input_name: str | None = None
    output_name: str | None = None


@dataclass(frozen=True)
class DestroyClass:
    name: str


@dataclass(frozen=True)
class DefineIndex:
    """``define index NAME on CLASS (attribute)``."""

    name: str
    class_name: str
    attribute: str
